package netnode

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"eacache/internal/cache"
	"eacache/internal/digest"
	"eacache/internal/hproto"
	"eacache/internal/metrics"
	"eacache/internal/proxy"
)

// DigestURL is the reserved URL under which a node serves its own cache
// digest over the ordinary fetch protocol — the same trick Squid uses
// (its digests live at /squid-internal-periodic/store_digest). Peers GET
// it, cache the filter, and consult it locally instead of sending ICP
// queries. A peer holding a replica at generation G requests
// "eac:digest?since=G" and receives a compact delta of the projection
// bits that flipped since G (or a full transfer when the change log no
// longer covers the span); the bare URL still serves the legacy
// unversioned filter for old peers.
const DigestURL = "eac:digest"

// digestSinceParam is the query key carrying the requester's replica
// generation.
const digestSinceParam = "since="

// DefaultDigestRefresh is how long a fetched peer digest is trusted before
// being revalidated.
const DefaultDigestRefresh = 10 * time.Second

// digestState is the digest-location machinery of a Node. The node's own
// summary is maintained incrementally from the cache event sink — every
// Put/Evict/Remove is O(k) counter work, and steady state never rescans
// the URL set (digest.Incremental's escape hatch aside). All fields are
// guarded by Node.digestMu; peer filters are immutable once published so
// lookups can use them after dropping the lock.
type digestState struct {
	// own is this node's published summary.
	own *digest.Incremental
	// peers caches the neighbours' fetched digest replicas by HTTP
	// address.
	peers map[string]*peerDigest
	// refresh bounds the trust window for fetched digests; staleness is
	// measured on the node's injected clock (Config.Now).
	refresh time.Duration
}

// peerDigest is one neighbour's digest replica plus its single-flight
// revalidation state.
type peerDigest struct {
	// filter is the replica (nil until first fetched); treated as
	// immutable — a delta is applied to a clone which is then swapped in.
	filter    *digest.Filter
	gen       uint64
	fetchedAt time.Time
	// inflight is non-nil while a refresh flight is running; it is
	// closed when the flight completes. Misses that find data serve the
	// stale replica instead of waiting; misses that find none wait for
	// this one flight instead of dialling their own.
	inflight chan struct{}
	// deltas/fulls count the transfers applied to this replica, for the
	// admin surface and eacctl.
	deltas, fulls int64
}

func newDigestState(cfg proxy.DigestConfig, capacity int64, refresh time.Duration, window int) (*digestState, error) {
	dc := cfg.WithDefaults(capacity)
	own, err := digest.NewIncremental(dc.Expected, dc.FPRate, window)
	if err != nil {
		return nil, err
	}
	if refresh <= 0 {
		refresh = DefaultDigestRefresh
	}
	return &digestState{
		own:     own,
		peers:   make(map[string]*peerDigest),
		refresh: refresh,
	}, nil
}

// digestEvent is the cache event sink feeding the own summary: inserts
// count in, evictions and removals count out, refreshes of an already
// cached URL are membership no-ops. It runs synchronously inside store
// mutations (under a shard lock), so it only touches the digest state —
// never the store.
//
// Tier moves fall out naturally: a demotion or a promotion-from-disk
// keeps the document resident in the logical store, so both kinds miss
// every case below and the membership is untouched; a disk-tier evict or
// remove means the URL truly left the node, and those share the Kind
// values the exit arm already matches.
func (n *Node) digestEvent(ev cache.Event) {
	switch ev.Kind {
	case cache.EventInsert:
		if ev.Refresh {
			return
		}
		n.digestMu.Lock()
		n.digests.own.Add(ev.Doc.URL)
		n.digestMu.Unlock()
	case cache.EventEvict, cache.EventRemove:
		n.digestMu.Lock()
		n.digests.own.Remove(ev.Doc.URL)
		n.digestMu.Unlock()
	}
}

// maybeRebuildOwn takes the counter-saturation escape hatch when the
// incremental summary reports degradation: a full-URL-scan rebuild,
// counted so "steady state performs zero rebuilds" is checkable. The URL
// snapshot is taken before the digest lock (the store takes shard locks)
// — mutations racing the scan can skew the rebuilt filter by a document
// or two, which the digest protocol already tolerates (it is advisory;
// false hits fall through to the origin).
func (n *Node) maybeRebuildOwn() {
	n.digestMu.Lock()
	need := n.digests.own.NeedsRebuild()
	n.digestMu.Unlock()
	if !need {
		return
	}
	urls := n.store.URLs()
	n.digestMu.Lock()
	if n.digests.own.NeedsRebuild() {
		n.digests.own.Rebuild(urls)
		n.dg.RebuildEscape()
		n.om.digestRebuildEscape()
	}
	n.digestMu.Unlock()
	n.warn("digest rebuild escape hatch taken", nil, "urls", len(urls))
}

// digestCandidates returns the health-allowed peers whose (cached,
// possibly stale) digests advertise url. No network waits happen on this
// path unless a peer's digest was never fetched at all — and then all
// concurrent misses share one single-flight fetch.
func (n *Node) digestCandidates(peers []Peer, url string) []Peer {
	var candidates []Peer
	for _, p := range peers {
		if !n.health.Allow(p.HTTP) {
			continue
		}
		f := n.peerDigest(p)
		if f == nil {
			// No digest obtainable: treat as not advertising; the
			// origin path still serves us.
			continue
		}
		if f.MayContain(url) {
			candidates = append(candidates, p)
		}
	}
	return candidates
}

// peerDigest returns p's digest replica for a lookup:
//
//   - fresh replica: returned as is;
//   - stale replica: returned immediately (serve-stale) while a
//     background single-flight refresh is kicked off — the miss path
//     never blocks on digest traffic;
//   - no replica yet: the lookup joins the one in-flight fetch (first
//     contact is the only time a miss waits, and a 32-way herd still
//     dials once).
func (n *Node) peerDigest(p Peer) *digest.Filter {
	n.digestMu.Lock()
	pd := n.digests.peers[p.HTTP]
	if pd == nil {
		pd = &peerDigest{}
		n.digests.peers[p.HTTP] = pd
	}
	if pd.filter != nil && n.now().Sub(pd.fetchedAt) < n.digests.refresh {
		f := pd.filter
		n.digestMu.Unlock()
		return f
	}
	if pd.filter != nil {
		// Stale: kick a refresh if none is running, answer from the
		// stale replica either way.
		n.startDigestFlightLocked(p, pd)
		f := pd.filter
		n.digestMu.Unlock()
		n.dg.StaleServed()
		n.om.digestStaleServed()
		return f
	}
	// First contact: join the single flight.
	n.startDigestFlightLocked(p, pd)
	wait := pd.inflight
	n.digestMu.Unlock()
	<-wait
	n.digestMu.Lock()
	f := pd.filter
	n.digestMu.Unlock()
	return f
}

// startDigestFlightLocked starts the single-flight refresh for pd unless
// one is already running. Caller holds digestMu.
func (n *Node) startDigestFlightLocked(p Peer, pd *peerDigest) {
	if pd.inflight != nil {
		return
	}
	pd.inflight = make(chan struct{})
	n.wg.Add(1)
	go n.digestFlight(p, pd)
}

// digestFlight is the one revalidation in flight for a peer: it syncs
// the replica (delta when possible, full otherwise), publishes the
// result, and wakes any first-contact waiters.
func (n *Node) digestFlight(p Peer, pd *peerDigest) {
	defer n.wg.Done()

	n.digestMu.Lock()
	var since uint64
	var base *digest.Filter
	if pd.filter != nil {
		since = pd.gen
		base = pd.filter.Clone()
	}
	n.digestMu.Unlock()

	n.dg.Fetch()
	f, gen, applied, err := n.fetchDigestSince(p.HTTP, since, base)

	n.digestMu.Lock()
	if err == nil {
		pd.filter, pd.gen, pd.fetchedAt = f, gen, n.now()
		if applied == digestSyncDelta {
			pd.deltas++
		} else {
			pd.fulls++
		}
	}
	done := pd.inflight
	pd.inflight = nil
	n.digestMu.Unlock()
	close(done)

	if err != nil {
		n.dg.FetchFailure()
		n.om.digestFetchFailure()
		n.warn("digest fetch failed", nil, "peer", p.HTTP, "err", err)
		n.health.ReportFailure(p.HTTP)
		n.robust.PeerFailure()
		return
	}
	if applied == digestSyncDelta {
		n.dg.DeltaApplied()
	} else {
		n.dg.FullApplied()
	}
	n.om.digestApplied(applied)
	n.health.ReportSuccess(p.HTTP)
}

// digestSync kinds, shared by the serve and apply metrics paths.
const (
	digestSyncFull = iota
	digestSyncDelta
)

// fetchDigestSince GETs a peer's digest versioned at since (0 = no
// replica, always answered with a full transfer) and returns the new
// replica filter and generation. A delta response is applied to base (a
// private clone of the current replica).
func (n *Node) fetchDigestSince(addr string, since uint64, base *digest.Filter) (*digest.Filter, uint64, int, error) {
	url := DigestURL + "?" + digestSinceParam + strconv.FormatUint(since, 10)
	body, err := n.fetchDigestBody(addr, url)
	if err != nil {
		return nil, 0, 0, err
	}
	s, err := digest.DecodeSync(body)
	if err != nil {
		return nil, 0, 0, err
	}
	if s.Delta != nil {
		if base == nil || s.Delta.From != since {
			return nil, 0, 0, fmt.Errorf("digest delta from %s starts at gen %d, replica at %d", addr, s.Delta.From, since)
		}
		if err := base.ApplyDelta(s.Delta); err != nil {
			return nil, 0, 0, err
		}
		return base, s.Delta.To, digestSyncDelta, nil
	}
	return s.Full, s.Gen, digestSyncFull, nil
}

// fetchDigest GETs a peer's digest from the bare reserved URL (legacy
// unversioned full transfer). Kept for mixed-version peers and tests;
// the revalidator uses fetchDigestSince.
func (n *Node) fetchDigest(addr string) (*digest.Filter, error) {
	body, err := n.fetchDigestBody(addr, DigestURL)
	if err != nil {
		return nil, err
	}
	var f digest.Filter
	if err := f.UnmarshalBinary(body); err != nil {
		return nil, err
	}
	return &f, nil
}

// fetchDigestBody performs the digest GET and returns the response body.
// The socket deadline deliberately uses the real clock (Config.Now is
// the cache-visible clock; see the Config.Now contract).
func (n *Node) fetchDigestBody(addr, url string) ([]byte, error) {
	conn, err := n.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(n.fetchTimeout))

	if err := hproto.WriteRequest(conn, hproto.Request{URL: url}); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := hproto.ReadResponse(br)
	if err != nil {
		return nil, err
	}
	if resp.Status != hproto.StatusOK {
		return nil, fmt.Errorf("digest fetch from %s: status %d", addr, resp.Status)
	}
	var body bytes.Buffer
	if _, err := io.CopyN(&body, br, resp.ContentLength); err != nil {
		return nil, fmt.Errorf("read digest body: %w", err)
	}
	return body.Bytes(), nil
}

// digestLoop is the background revalidator: on every tick it refreshes
// whichever known peer replicas have gone stale (single-flight per peer,
// health-gated) and checks the own summary's escape hatch, so steady
// state keeps every digest fresh without a single miss ever paying for
// digest traffic. First-ever contact with a peer still happens lazily on
// the first miss that consults it.
func (n *Node) digestLoop() {
	defer n.wg.Done()
	period := n.digests.refresh / 2
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-t.C:
		}
		n.maybeRebuildOwn()

		peers := n.peerList()
		live := make(map[string]Peer, len(peers))
		for _, p := range peers {
			live[p.HTTP] = p
		}
		now := n.now()
		n.digestMu.Lock()
		for addr, pd := range n.digests.peers {
			p, ok := live[addr]
			if !ok {
				// The peer left the membership; drop its replica unless
				// a flight still owns it.
				if pd.inflight == nil {
					delete(n.digests.peers, addr)
				}
				continue
			}
			if pd.filter == nil || now.Sub(pd.fetchedAt) < n.digests.refresh {
				continue
			}
			if !n.health.Allow(addr) {
				continue
			}
			n.startDigestFlightLocked(p, pd)
		}
		n.digestMu.Unlock()
	}
}

// serveDigestRequest answers a digest fetch. The bare reserved URL
// serves the legacy unversioned filter; "eac:digest?since=G" serves the
// versioned sync envelope — a compact delta when the change log covers
// the requester's generation, a full transfer otherwise.
func (n *Node) serveDigestRequest(conn io.Writer, url string) {
	if n.digests == nil {
		_ = hproto.WriteResponse(conn, hproto.Response{Status: hproto.StatusNotFound}, nil)
		return
	}
	n.maybeRebuildOwn()

	since, versioned := parseDigestSince(url)
	var (
		data  []byte
		err   error
		delta bool
	)
	n.digestMu.Lock()
	own := n.digests.own
	if !versioned {
		data, err = own.Filter().MarshalBinary()
	} else if d, ok := own.Delta(since); ok {
		data, err = d.MarshalBinary()
		delta = true
	} else {
		data, err = digest.EncodeFull(own.Filter(), own.Generation())
	}
	n.digestMu.Unlock()
	if err != nil {
		n.warn("marshal digest failed", nil, "err", err)
		_ = hproto.WriteResponse(conn, hproto.Response{Status: hproto.StatusNotFound}, nil)
		return
	}
	if delta {
		n.dg.DeltaServed(len(data))
		n.om.digestServed(digestSyncDelta, len(data))
	} else {
		n.dg.FullServed(len(data))
		n.om.digestServed(digestSyncFull, len(data))
	}
	if err := hproto.WriteResponse(conn, hproto.Response{
		Status:        hproto.StatusOK,
		ContentLength: int64(len(data)),
	}, bytes.NewReader(data)); err != nil {
		n.warn("write digest failed", nil, "err", err)
	}
}

// isDigestURL reports whether url addresses the reserved digest
// endpoint, bare or with a query.
func isDigestURL(url string) bool {
	return url == DigestURL || strings.HasPrefix(url, DigestURL+"?")
}

// parseDigestSince extracts the requester's replica generation from
// "eac:digest?since=G". ok is false for the bare legacy URL; a malformed
// query degrades to since=0 (a full transfer), never an error.
func parseDigestSince(url string) (since uint64, ok bool) {
	rest, found := strings.CutPrefix(url, DigestURL+"?")
	if !found {
		return 0, false
	}
	for _, kv := range strings.Split(rest, "&") {
		if v, isSince := strings.CutPrefix(kv, digestSinceParam); isSince {
			if g, err := strconv.ParseUint(v, 10, 64); err == nil {
				return g, true
			}
			return 0, true
		}
	}
	return 0, true
}

// PeerDigestStatus describes one cached peer replica for the admin
// surface and eacctl.
type PeerDigestStatus struct {
	Generation uint64 `json:"generation"`
	// AgeMS is how long ago the replica was last synced, on the node's
	// clock; -1 when never fetched.
	AgeMS int64 `json:"age_ms"`
	Len   int   `json:"len"`
	// Refreshing reports an in-flight revalidation.
	Refreshing    bool  `json:"refreshing"`
	DeltasApplied int64 `json:"deltas_applied"`
	FullsApplied  int64 `json:"fulls_applied"`
}

// DigestReport is the GET /admin/digests body: the own summary's
// generation and health plus every cached peer replica, so digest
// staleness across the group is visible from one seed node.
type DigestReport struct {
	Enabled        bool                        `json:"enabled"`
	OwnGeneration  uint64                      `json:"own_generation"`
	OwnLen         int                         `json:"own_len"`
	Window         int                         `json:"window"`
	PinnedCounters int                         `json:"pinned_counters"`
	RebuildEscapes int64                       `json:"rebuild_escapes"`
	Stats          metrics.DigestSnapshot      `json:"stats"`
	Peers          map[string]PeerDigestStatus `json:"peers,omitempty"`
}

// DigestReport snapshots the digest machinery (zero-valued when the node
// does not locate via digests).
func (n *Node) DigestReport() DigestReport {
	rep := DigestReport{Stats: n.dg.Snapshot()}
	if n.digests == nil {
		return rep
	}
	now := n.now()
	n.digestMu.Lock()
	defer n.digestMu.Unlock()
	rep.Enabled = true
	rep.OwnGeneration = n.digests.own.Generation()
	rep.OwnLen = n.digests.own.Len()
	rep.Window = n.digests.own.Window()
	rep.PinnedCounters = n.digests.own.Pinned()
	rep.RebuildEscapes = n.digests.own.Rebuilds()
	rep.Peers = make(map[string]PeerDigestStatus, len(n.digests.peers))
	for addr, pd := range n.digests.peers {
		st := PeerDigestStatus{
			Generation:    pd.gen,
			AgeMS:         -1,
			Refreshing:    pd.inflight != nil,
			DeltasApplied: pd.deltas,
			FullsApplied:  pd.fulls,
		}
		if pd.filter != nil {
			st.Len = pd.filter.Len()
			st.AgeMS = now.Sub(pd.fetchedAt).Milliseconds()
		}
		rep.Peers[addr] = st
	}
	return rep
}

// DigestStats exposes the digest traffic counters.
func (n *Node) DigestStats() metrics.DigestSnapshot { return n.dg.Snapshot() }
