package netnode

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"time"

	"eacache/internal/digest"
	"eacache/internal/hproto"
	"eacache/internal/proxy"
)

// DigestURL is the reserved URL under which a node serves its own cache
// digest over the ordinary fetch protocol — the same trick Squid uses
// (its digests live at /squid-internal-periodic/store_digest). Peers GET
// it, cache the filter, and consult it locally instead of sending ICP
// queries.
const DigestURL = "eac:digest"

// DefaultDigestRefresh is how long a fetched peer digest is trusted before
// being re-fetched.
const DefaultDigestRefresh = 10 * time.Second

// digestState is the digest-location machinery of a Node.
type digestState struct {
	// own is this node's published summary.
	own *digest.Summary
	// peers caches the neighbours' fetched digests by HTTP address.
	peers map[string]*peerDigest
	// refresh bounds the trust window for fetched digests.
	refresh time.Duration
}

type peerDigest struct {
	filter    *digest.Filter
	fetchedAt time.Time
}

func newDigestState(cfg proxy.DigestConfig, capacity int64, refresh time.Duration) (*digestState, error) {
	dc := cfg.WithDefaults(capacity)
	own, err := digest.NewSummary(dc.Expected, dc.FPRate, dc.RebuildEvery)
	if err != nil {
		return nil, err
	}
	if refresh <= 0 {
		refresh = DefaultDigestRefresh
	}
	return &digestState{
		own:     own,
		peers:   make(map[string]*peerDigest),
		refresh: refresh,
	}, nil
}

// ownDigestBytes rebuilds the node's summary if stale and serialises it.
// Caller must hold n.digestMu; the store counters it reads are
// independently thread-safe.
func (n *Node) ownDigestBytes() ([]byte, error) {
	mutations := n.store.Insertions() + n.store.Evictions()
	if n.digests.own.Stale(mutations) {
		n.digests.own.Rebuild(n.store.URLs(), mutations)
	}
	return n.digests.own.Filter().MarshalBinary()
}

// digestCandidates returns the health-allowed peers whose (cached,
// possibly re-fetched) digests advertise url. Network fetches happen
// without holding the lock.
func (n *Node) digestCandidates(peers []Peer, url string) []Peer {
	var candidates []Peer
	for _, p := range peers {
		if !n.health.Allow(p.HTTP) {
			continue
		}
		f := n.peerDigest(p)
		if f == nil {
			// No digest obtainable: treat as not advertising; the
			// origin path still serves us.
			continue
		}
		if f.MayContain(url) {
			candidates = append(candidates, p)
		}
	}
	return candidates
}

// peerDigest returns a sufficiently fresh digest for p, fetching one if
// needed, or nil when the peer cannot supply one.
func (n *Node) peerDigest(p Peer) *digest.Filter {
	n.digestMu.Lock()
	pd := n.digests.peers[p.HTTP]
	refresh := n.digests.refresh
	n.digestMu.Unlock()
	if pd != nil && time.Since(pd.fetchedAt) < refresh {
		return pd.filter
	}

	f, err := n.fetchDigest(p.HTTP)
	if err != nil {
		n.warn("digest fetch failed", nil, "peer", p.HTTP, "err", err)
		n.health.ReportFailure(p.HTTP)
		n.robust.PeerFailure()
		return nil
	}
	n.health.ReportSuccess(p.HTTP)
	n.digestMu.Lock()
	n.digests.peers[p.HTTP] = &peerDigest{filter: f, fetchedAt: time.Now()}
	n.digestMu.Unlock()
	return f
}

// fetchDigest GETs a peer's digest from the reserved URL.
func (n *Node) fetchDigest(addr string) (*digest.Filter, error) {
	conn, err := n.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(n.fetchTimeout))

	if err := hproto.WriteRequest(conn, hproto.Request{URL: DigestURL}); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := hproto.ReadResponse(br)
	if err != nil {
		return nil, err
	}
	if resp.Status != hproto.StatusOK {
		return nil, fmt.Errorf("digest fetch from %s: status %d", addr, resp.Status)
	}
	var body bytes.Buffer
	if _, err := io.CopyN(&body, br, resp.ContentLength); err != nil {
		return nil, fmt.Errorf("read digest body: %w", err)
	}
	var f digest.Filter
	if err := f.UnmarshalBinary(body.Bytes()); err != nil {
		return nil, err
	}
	return &f, nil
}
