package netnode

// Background EA-aware migration: when the membership epoch changes under
// hash location, resident copies whose owner moved are handed off to the
// new owner over the fetch protocol's PUT verb; DrainHandoff does the
// same for a departing node's whole store. The mover is deliberately
// conservative about the ≤1-copy invariant: a document is REMOVED from
// the local store before any byte of it travels, so the group never
// holds two copies of anything — at worst it briefly holds zero, which
// the origin repairs on the next request. The expiration age piggybacked
// on each push response is remembered per destination and gates later
// transfers: a copy idle longer than the destination's expiration age
// would be evicted there before its next expected hit, so the transfer
// bytes are not worth spending (the paper's placement economics applied
// to rebalancing).

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"eacache/internal/cache"
	"eacache/internal/chash"
	"eacache/internal/health"
	"eacache/internal/hproto"
	"eacache/internal/resolve"
)

// Per-document migration results (the eac_migration_docs_total labels).
const (
	mrKept = iota
	mrTransferred
	mrSkippedEA
	mrRefused
	mrFailed
	mrCount
)

var migrateResultNames = [mrCount]string{"kept", "transferred", "skipped_ea", "refused", "failed"}

// MigrationReport accounts for one migration pass. Every scanned
// document lands in exactly one bucket:
//
//	Scanned == Kept + Transferred + SkippedEA + Refused + Failed
//
// which the churn gate checks — a doc that silently fell out of the
// accounting would be a doc the mover lost track of.
type MigrationReport struct {
	// Epoch is the membership revision the pass ran against.
	Epoch int64 `json:"epoch"`
	// Reason is "rebalance" (epoch change) or "drain" (DrainHandoff).
	Reason string `json:"reason"`
	// Scanned counts documents actually processed (on an aborted pass,
	// less than the store walk intended).
	Scanned int `json:"scanned"`
	// Kept stayed local: this node still owns them, or they vanished
	// from the store before the mover reached them.
	Kept int `json:"kept"`
	// Transferred were pushed to and stored by their new owner.
	Transferred      int   `json:"transferred"`
	TransferredBytes int64 `json:"transferred_bytes"`
	// SkippedEA were removed locally but not pushed: idle longer than
	// the destination's expiration age, so the transfer would have been
	// wasted bytes (the destination would evict before the next hit).
	SkippedEA int `json:"skipped_ea"`
	// Refused were pushed but declined by the destination (not the owner
	// under its ring view, draining, or no room).
	Refused int `json:"refused"`
	// Failed hit a transport error mid-push; the document stays
	// recoverable from the origin.
	Failed int `json:"failed"`
	// Aborted marks a pass cut short by a newer epoch or node shutdown;
	// the re-kick that bumped the epoch re-runs the walk.
	Aborted    bool    `json:"aborted"`
	DurationMS float64 `json:"duration_ms"`
}

// LastMigration returns the most recent migration pass's report; ok is
// false when none has run.
func (n *Node) LastMigration() (MigrationReport, bool) {
	if r := n.lastMig.Load(); r != nil {
		return *r, true
	}
	return MigrationReport{}, false
}

// kickMigration schedules a migration pass; coalesces with one already
// pending (the pass re-reads the epoch, so one run covers many kicks).
func (n *Node) kickMigration() {
	if n.migrateKick == nil {
		return
	}
	select {
	case n.migrateKick <- struct{}{}:
	default:
	}
}

// migratorLoop runs one rebalance pass per kick until shutdown. Started
// only under hash location — the only mode whose placement is
// structural enough that membership changes move ownership.
func (n *Node) migratorLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.closed:
			return
		case <-n.migrateKick:
		}
		rep := n.runRebalance()
		n.lastMig.Store(&rep)
		if rep.Transferred+rep.SkippedEA+rep.Refused+rep.Failed > 0 || rep.Aborted {
			n.warn("migration pass finished", nil,
				"reason", rep.Reason, "epoch", rep.Epoch, "scanned", rep.Scanned,
				"kept", rep.Kept, "transferred", rep.Transferred,
				"bytes", rep.TransferredBytes, "skipped_ea", rep.SkippedEA,
				"refused", rep.Refused, "failed", rep.Failed, "aborted", rep.Aborted)
		}
	}
}

// runRebalance re-resolves every resident document against the current
// locator and hands off the ones this node no longer owns. Aborts (to be
// re-kicked) when the epoch moves underneath it.
func (n *Node) runRebalance() MigrationReport {
	epoch := n.epoch.Load()
	loc := n.hash.Load()
	dest := func(url string) (string, bool) {
		if loc == nil {
			return "", false
		}
		l := loc.Locate(nil, url, n.now())
		if l.Placement == resolve.PlacementAlways || len(l.Candidates) == 0 {
			// Still the (acting) home — or every new owner is dead, in
			// which case the copy is safest where it is.
			return "", false
		}
		return l.Candidates[0].ID, true
	}
	abort := func() bool { return n.epoch.Load() != epoch }
	return n.migrate("rebalance", epoch, dest, abort)
}

// DrainHandoff hands off this node's copies ahead of a planned shutdown
// and returns the accounting. From the first instant the node keeps no
// new copies (it still serves and relays), so the store only shrinks
// while the handoff walks it. Under hash location each document goes to
// its owner on the ring WITHOUT this node — where it will live after the
// departure; under ICP/digest location sole copies are spread
// round-robin across live peers. Safe to call more than once; the
// drained state is permanent for the node's lifetime.
func (n *Node) DrainHandoff() MigrationReport {
	n.drainMu.Lock()
	defer n.drainMu.Unlock()
	n.draining.Store(true)

	peers := n.peerList()
	var dest func(string) (string, bool)
	if n.location == resolve.LocateHash {
		loc := n.drainLocator(peers)
		dest = func(url string) (string, bool) {
			if loc == nil {
				return "", false
			}
			l := loc.Locate(nil, url, n.now())
			if len(l.Candidates) == 0 {
				return "", false
			}
			return l.Candidates[0].ID, true
		}
	} else {
		var alive []string
		for _, p := range peers {
			if n.health.State(p.HTTP) != health.Dead {
				alive = append(alive, p.HTTP)
			}
		}
		var rr atomic.Uint64
		dest = func(string) (string, bool) {
			if len(alive) == 0 {
				return "", false
			}
			return alive[int((rr.Add(1)-1)%uint64(len(alive)))], true
		}
	}
	rep := n.migrate("drain", n.epoch.Load(), dest, nil)
	n.lastMig.Store(&rep)
	n.warn("drain handoff finished", nil,
		"scanned", rep.Scanned, "transferred", rep.Transferred,
		"kept", rep.Kept, "skipped_ea", rep.SkippedEA,
		"refused", rep.Refused, "failed", rep.Failed)
	return rep
}

// drainLocator is the ring without this node: where every document lives
// once the node departs. Self is this node's own name, which is NOT in
// the ring, so Locate never short-circuits on it and the first live
// owner is always a remote candidate.
func (n *Node) drainLocator(peers []Peer) *resolve.HashLocator {
	if len(peers) == 0 {
		return nil
	}
	members := make([]string, 0, len(peers))
	byName := make(map[string]Peer, len(peers))
	for _, p := range peers {
		name := ringName(p)
		members = append(members, name)
		byName[name] = p
	}
	ring, err := chash.New(0, members...)
	if err != nil {
		n.warn("drain ring build failed", nil, "err", err)
		return nil
	}
	return &resolve.HashLocator{
		Ring:        ring,
		Self:        n.hashName,
		Epoch:       n.epoch.Load(),
		Fingerprint: ring.Fingerprint(),
		Candidate: func(member string) (resolve.Candidate, bool) {
			p, ok := byName[member]
			if !ok || !n.health.Allow(p.HTTP) {
				return resolve.Candidate{}, false
			}
			return resolve.Candidate{ID: p.HTTP}, true
		},
	}
}

// destAges caches each destination's piggybacked expiration age across a
// migration pass, so the EA gate sharpens as the pass learns. Unknown
// destinations are pushed to optimistically — the first exchange teaches.
type destAges struct {
	mu    sync.Mutex
	known map[string]time.Duration
}

func (d *destAges) get(addr string) (time.Duration, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	age, ok := d.known[addr]
	return age, ok
}

func (d *destAges) set(addr string, age time.Duration) {
	d.mu.Lock()
	d.known[addr] = age
	d.mu.Unlock()
}

// migrate walks the store with bounded concurrency, routing each
// document through dest (returning false keeps it local) and tallying
// the per-document results. abort, when set, is polled between documents
// and cuts the pass short (Aborted=true). Transfers are paced to
// Config.MigrateRate when set, so a rebalance never starves the request
// path for bandwidth.
func (n *Node) migrate(reason string, epoch int64, dest func(string) (string, bool), abort func() bool) MigrationReport {
	start := time.Now()
	rep := MigrationReport{Epoch: epoch, Reason: reason}
	urls := n.store.URLs()

	var pace <-chan time.Time
	if n.migrateRate > 0 {
		t := time.NewTicker(time.Second / time.Duration(n.migrateRate))
		defer t.Stop()
		pace = t.C
	}

	var (
		mu   sync.Mutex
		stop atomic.Bool
	)
	tally := func(res int, bytes int64) {
		n.om.migration(res, bytes)
		mu.Lock()
		rep.Scanned++
		switch res {
		case mrKept:
			rep.Kept++
		case mrTransferred:
			rep.Transferred++
			rep.TransferredBytes += bytes
		case mrSkippedEA:
			rep.SkippedEA++
		case mrRefused:
			rep.Refused++
		case mrFailed:
			rep.Failed++
		}
		mu.Unlock()
	}

	ages := &destAges{known: make(map[string]time.Duration)}
	work := make(chan string)
	var wg sync.WaitGroup
	for i := 0; i < n.migrateConc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for url := range work {
				res, bytes := n.migrateDoc(url, dest, ages, pace, &stop)
				tally(res, bytes)
			}
		}()
	}
	for _, url := range urls {
		if abort != nil && abort() {
			stop.Store(true)
		}
		select {
		case <-n.closed:
			stop.Store(true)
		default:
		}
		if stop.Load() {
			break
		}
		work <- url
	}
	close(work)
	wg.Wait()
	rep.Aborted = stop.Load()
	rep.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	return rep
}

// migrateDoc moves one document. Ordering is the invariant-bearing part:
// the local copy is removed BEFORE the push, so no poll of the group can
// ever see two copies; a push that then fails or is refused leaves the
// document origin-recoverable, never duplicated.
func (n *Node) migrateDoc(url string, dest func(string) (string, bool), ages *destAges, pace <-chan time.Time, stop *atomic.Bool) (int, int64) {
	addr, move := dest(url)
	if !move {
		return mrKept, 0
	}
	entry, ok := n.store.Entry(url)
	if !ok {
		// Evicted underneath the walk: nothing left to move.
		return mrKept, 0
	}
	if !n.store.Remove(url) {
		return mrKept, 0
	}
	idle := n.now().Sub(entry.LastHit)
	if age, known := ages.get(addr); known && age != cache.NoContention && idle > age {
		return mrSkippedEA, 0
	}
	if pace != nil {
		select {
		case <-pace:
		case <-n.closed:
			stop.Store(true)
			n.robust.MigrationFailure()
			return mrFailed, 0
		}
	}
	stored, destAge, err := n.pushCopy(addr, entry.Doc)
	if err != nil {
		n.health.ReportFailure(addr)
		n.robust.MigrationFailure()
		n.warn("migration push failed", nil, "url", url, "dest", addr, "err", err)
		return mrFailed, 0
	}
	n.health.ReportSuccess(addr)
	ages.set(addr, destAge)
	if !stored {
		return mrRefused, 0
	}
	n.robust.Migrated(entry.Doc.Size)
	return mrTransferred, entry.Doc.Size
}

// pushCopy offers doc to addr over the fetch protocol's PUT verb,
// streaming the (synthetic) body, and returns whether the destination
// stored it plus the destination's piggybacked expiration age.
func (n *Node) pushCopy(addr string, doc cache.Document) (stored bool, destAge time.Duration, err error) {
	conn, err := n.dial(addr)
	if err != nil {
		return false, 0, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(n.fetchTimeout))

	if err := hproto.WriteRequest(conn, hproto.Request{
		URL:          doc.URL,
		RequesterAge: n.store.ExpirationAge(n.now()),
		SizeHint:     doc.Size,
		Push:         true,
	}); err != nil {
		return false, 0, err
	}
	if _, err := io.Copy(conn, zeroReader(doc.Size)); err != nil {
		return false, 0, err
	}
	br := getReader(conn)
	defer putReader(br)
	resp, err := hproto.ReadResponse(br)
	if err != nil {
		return false, 0, err
	}
	if resp.AgeClamped {
		n.robust.WireClamp()
		n.warn("clamped bad push-response age", nil, "responder", addr)
	}
	return resp.Status == hproto.StatusOK, resp.ResponderAge, nil
}

// servePush is the receiving half of a migration handoff: drain the
// offered body (the exchange must stay in sync whatever we decide), then
// store iff mayAcceptPush allows it. 200 means stored; 404 means
// declined; either way this node's expiration age rides back for the
// sender's EA gate.
func (n *Node) servePush(conn io.Writer, br io.Reader, req hproto.Request) {
	if req.SizeHint > 0 {
		if _, err := io.CopyN(io.Discard, br, req.SizeHint); err != nil {
			n.warn("push body truncated", nil, "url", req.URL, "err", err)
			return
		}
	}
	stored := n.mayAcceptPush(req.URL) && n.putIfFits(cache.Document{URL: req.URL, Size: req.SizeHint})
	n.om.pushReceived(stored)
	status := hproto.StatusNotFound
	if stored {
		status = hproto.StatusOK
	}
	if err := hproto.WriteResponse(conn, hproto.Response{
		Status:       status,
		ResponderAge: n.store.ExpirationAge(n.now()),
	}, nil); err != nil {
		n.warn("write push response failed", nil, "err", err)
	}
}

// mayAcceptPush reports whether this node may store a pushed copy of
// url: never while draining; always under ICP/digest location (pushes
// only arrive from an explicit drain spreading sole copies); under hash
// location iff this node sits within the first TWO raw ring owners.
// Position one is the plain case — the sender rebalanced the document
// to its new home. Position two covers a drain handoff, where the
// receiver's ring still lists the draining sender as owner one until
// the leave is published. No health gating and no fingerprint check:
// senders remove their copy before any byte travels, so accepting a
// push can never mint a second copy — which is also why a warming node
// accepts pushes while refusing resolve-keeps.
func (n *Node) mayAcceptPush(url string) bool {
	if n.draining.Load() {
		return false
	}
	h := n.hash.Load()
	if n.location != resolve.LocateHash || h == nil || h.Ring == nil {
		return true
	}
	for _, owner := range h.Ring.Owners(url, 2) {
		if owner == h.Self {
			return true
		}
	}
	return false
}
