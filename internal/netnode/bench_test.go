// End-to-end node benchmarks. This file lives in the external test
// package so it can import benchkit (which imports netnode) without a
// cycle; cmd/benchjson runs the same bodies headlessly.
package netnode_test

import (
	"testing"

	"eacache/internal/benchkit"
)

// BenchmarkNodeRequest drives a live two-node EA group over real sockets
// with telemetry off: the baseline for the observability overhead budget.
func BenchmarkNodeRequest(b *testing.B) { benchkit.NodeRequest(false)(b) }

// BenchmarkNodeRequestTelemetry is the same workload with an
// obs.Telemetry wired into the requesting node — metrics, tracing, and
// the admin registry all live. Compare ns/op against BenchmarkNodeRequest
// to measure the telemetry tax (budget: <5%).
func BenchmarkNodeRequestTelemetry(b *testing.B) { benchkit.NodeRequest(true)(b) }

// BenchmarkNodeRequestParallel drives the same workload from many
// goroutines at once against a requester on the sharded store (default
// shard count, 8× parallelism per core). On multi-core hosts this is the
// throughput benchmark for the concurrent hot path; the reported
// gomaxprocs metric records how many cores the run had.
func BenchmarkNodeRequestParallel(b *testing.B) { benchkit.NodeRequestParallel(0, 8)(b) }
