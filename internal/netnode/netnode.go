// Package netnode runs a cooperative caching proxy on real sockets: ICP
// (RFC 2186) over UDP for document location and the hproto inter-proxy
// fetch protocol over TCP, with cache expiration ages piggybacked exactly
// as the paper describes. It demonstrates that the EA scheme's decision
// inputs travel on the wire with no extra messages; the deterministic
// simulator (internal/sim) uses the same decision logic in-process.
package netnode

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eacache/internal/blob"
	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/faults"
	"eacache/internal/health"
	"eacache/internal/hproto"
	"eacache/internal/icp"
	"eacache/internal/metrics"
	"eacache/internal/obs"
	"eacache/internal/persist"
	"eacache/internal/proxy"
	"eacache/internal/resolve"
)

// DefaultICPTimeout bounds how long a node waits for ICP replies before
// treating silent neighbours as misses.
const DefaultICPTimeout = 150 * time.Millisecond

// Defaults for the fetch-path timeouts and retry budget (Config fields of
// the same names).
const (
	DefaultDialTimeout   = 2 * time.Second
	DefaultFetchTimeout  = 5 * time.Second
	DefaultFetchAttempts = 2
)

// Overload-protection defaults (Config fields of the same names).
const (
	// DefaultOriginConcurrency bounds simultaneous parent/origin fetches.
	DefaultOriginConcurrency = 64
	// DefaultShedQueueWait is how long an over-limit request may queue at
	// the front door before it is shed (only when MaxInflight is set).
	DefaultShedQueueWait = 100 * time.Millisecond
)

// Elastic-membership defaults (Config fields of the same names).
const (
	// DefaultReadmitProbe spaces the out-of-band probes sent to ejected
	// peers.
	DefaultReadmitProbe = 500 * time.Millisecond
	// DefaultMigrateConcurrency bounds parallel handoff transfers.
	DefaultMigrateConcurrency = 2
)

// ErrOverloaded is returned by Request when the node is over its
// MaxInflight bound and the ShedQueueWait budget elapsed without a slot
// freeing up — a fast refusal instead of a collapse. Callers should test
// with errors.Is.
var ErrOverloaded = errors.New("netnode: overloaded, request shed")

// DefaultSnapshotInterval is how often a persistent node checkpoints when
// Config.SnapshotInterval is left zero.
const DefaultSnapshotInterval = 30 * time.Second

// Peer is a neighbour node's pair of service addresses.
type Peer struct {
	// ICP is the neighbour's UDP query address.
	ICP *net.UDPAddr
	// HTTP is the neighbour's TCP fetch address.
	HTTP string
	// Name is the neighbour's hash-ring member name under LocateHash
	// (its Config.HashName); empty defaults to HTTP. Sim experiments
	// route URLs to the same homes when the names match the proxy IDs.
	Name string
	// Admin is the neighbour's admin/debug HTTP address (its obs
	// endpoint), when known. Purely informational: the request path
	// never touches it, but the membership API republishes it so
	// introspection tools (cmd/eacctl) can walk the whole group from
	// any one member.
	Admin string
}

// Store is the cache behind a live node: the surface the request path,
// the ICP responder, and the persistence layer need. It is implemented
// by *cache.ShardedStore and by the single-threaded *cache.Store — the
// node wraps the latter in a one-shard concurrency-safe adapter
// (cache.SingleShard), so existing callers keep handing in a plain
// Store and get identical cache behaviour.
type Store interface {
	Get(url string, now time.Time) (cache.Document, bool)
	Peek(url string) (cache.Document, bool)
	Touch(url string, now time.Time) bool
	Contains(url string) bool
	Put(doc cache.Document, now time.Time) ([]cache.Eviction, error)
	ExpirationAge(now time.Time) time.Duration
	Capacity() int64
	Used() int64
	Len() int
	Evictions() int64
	Insertions() int64
	URLs() []string
	SetEventSink(fn func(cache.Event))
	RestoreEntry(doc cache.Document, enteredAt, lastHit time.Time, hits int64) error
	RestoreTracker(st cache.TrackerState)
}

// Config configures a Node.
type Config struct {
	// ID names the node for logs.
	ID string
	// ICPAddr and HTTPAddr are listen addresses ("127.0.0.1:0" picks a
	// free port).
	ICPAddr  string
	HTTPAddr string
	// Store is the node's cache: a *cache.ShardedStore for a node meant
	// to serve concurrent traffic, or a plain *cache.Store (wrapped in a
	// one-shard adapter internally). Required.
	Store Store
	// DiskDir, when set, adds a content-addressed blob tier below the
	// memory store (internal/blob): memory victims whose expiration age
	// says they still have life ahead demote to checksummed files under
	// this directory instead of exiting, and disk hits re-promote on
	// access — one logical store holding far more than memory allows.
	// Requires DiskCapacity.
	DiskDir string
	// DiskCapacity is the disk tier's byte budget. Required with DiskDir,
	// rejected without it; negative is rejected.
	DiskCapacity int64
	// DiskDemote selects the demotion admission rule: "ea" (the default —
	// demote only victims younger than the disk tier's own expiration
	// age, the paper's placement rule applied between tiers) or "always"
	// (spill every victim). Requires DiskDir when set.
	DiskDemote string
	// Scheme is the placement scheme. Required.
	Scheme core.Scheme
	// OriginAddr is the TCP address of an hproto origin server used to
	// resolve group-wide misses; empty means misses fail (unless a
	// parent is configured).
	OriginAddr string
	// ParentAddr is the fetch (TCP) address of a hierarchical parent
	// node. When set, group-wide misses are resolved through the parent
	// (paper §3.3) instead of directly against the origin.
	ParentAddr string
	// ICPTimeout bounds the query fan-out wait. Defaults to
	// DefaultICPTimeout.
	ICPTimeout time.Duration
	// Location selects ICP queries (default), Summary-Cache digests
	// fetched from peers over the fetch protocol (see DigestURL), or
	// consistent-hash home routing (resolve.LocateHash, incompatible
	// with ParentAddr).
	Location resolve.Location
	// HashName is this node's hash-ring member name under LocateHash;
	// empty defaults to the bound HTTP address. Must match what peers
	// put in Peer.Name for this node.
	HashName string
	// Digest tunes the summaries when Location is resolve.LocateDigest.
	Digest proxy.DigestConfig
	// DigestRefresh bounds how long a fetched peer digest is trusted.
	// Defaults to DefaultDigestRefresh.
	DigestRefresh time.Duration
	// DigestDeltaWindow is how many mutations the own digest's change
	// log retains: peers whose replica is at most this many generations
	// behind refresh with a compact delta instead of a full filter
	// transfer. 0 means digest.DefaultDeltaWindow; negative is rejected.
	DigestDeltaWindow int
	// DialTimeout bounds TCP connection establishment for every outbound
	// fetch (peers, parent, origin). Defaults to DefaultDialTimeout;
	// negative is rejected.
	DialTimeout time.Duration
	// FetchTimeout bounds a whole fetch exchange (request, response head,
	// body) on both the requester and responder side. Defaults to
	// DefaultFetchTimeout; negative is rejected.
	FetchTimeout time.Duration
	// FetchAttempts is how many times a parent/origin fetch is tried
	// before the request fails (transport errors only; a 404 is final).
	// Defaults to DefaultFetchAttempts; negative is rejected.
	FetchAttempts int
	// OriginConcurrency bounds how many parent/origin fetches may run at
	// once, so a slow upstream cannot absorb every goroutine. Acquiring a
	// slot is budgeted by FetchTimeout. Zero defaults to
	// DefaultOriginConcurrency; negative is rejected.
	OriginConcurrency int
	// MaxInflight bounds concurrent Request calls; beyond it the front
	// door sheds (ErrOverloaded) after at most ShedQueueWait. Zero
	// disables shedding; negative is rejected.
	MaxInflight int
	// ShedQueueWait is how long an over-MaxInflight request may wait for
	// a slot before being shed. Zero defaults to DefaultShedQueueWait;
	// negative is rejected. Requires MaxInflight when set.
	ShedQueueWait time.Duration
	// Health tunes the per-peer circuit breaker (thresholds, probe
	// backoff). The zero value uses the health package defaults.
	Health health.Config
	// EjectAfter, when positive, enables breaker-driven ejection: a peer
	// whose breaker stays dead this long is removed from the locator set
	// (ICP fan-out and hash homing) until an out-of-band probe succeeds,
	// at which point it is readmitted automatically. Zero disables
	// ejection; negative is rejected.
	EjectAfter time.Duration
	// ReadmitProbe spaces the out-of-band probes sent to ejected peers.
	// Defaults to DefaultReadmitProbe; requires EjectAfter when set;
	// negative is rejected.
	ReadmitProbe time.Duration
	// MigrateConcurrency bounds parallel handoff transfers during ring
	// rebalances and drain. Zero defaults to DefaultMigrateConcurrency;
	// negative is rejected.
	MigrateConcurrency int
	// MigrateRate caps handoff transfers per second, so migration never
	// starves the request path. Zero means unpaced; negative is rejected.
	MigrateRate int
	// JoinWarmup, under LocateHash, makes a freshly started node relay
	// without keeping copies for this long: it serves what it has and
	// accepts migration pushes, but refuses resolve-keeps and front-door
	// stores until the rest of the group has had time to converge on its
	// arrival — storing earlier could duplicate a copy a stale-view peer
	// still holds. Zero disables the warmup; negative is rejected.
	JoinWarmup time.Duration
	// DataDir, when set, makes the node crash-safe: cache contents,
	// per-document metadata, and the expiration-age tracker are journaled
	// to this directory and recovered on restart (see internal/persist).
	// The Store must be freshly built — recovered state is loaded into it
	// before the servers start. Empty disables persistence.
	DataDir string
	// SnapshotInterval is how often the node checkpoints (snapshot +
	// journal rotation). Zero defaults to DefaultSnapshotInterval;
	// negative is rejected. Requires DataDir.
	SnapshotInterval time.Duration
	// JournalBatch bounds the persistence layer's group-commit queue
	// (persist.Config.BatchFrames). Zero uses the persist default;
	// negative is rejected. Requires DataDir when set.
	JournalBatch int
	// Faults, when set, injects deterministic faults into every socket
	// the node opens — the ICP query socket, outbound fetch dials, and
	// accepted fetch conns — for chaos tests and manual chaos runs.
	Faults *faults.Injector
	// Obs, when set, makes the node observable: per-request trace spans
	// into the telemetry's ring, and counters/histograms/gauges into its
	// registry (hit mix, per-stage latencies, EA placement decisions,
	// breaker states, cache contention). Nil disables telemetry at zero
	// request-path cost.
	Obs *obs.Telemetry
	// Logger receives structured operational logs (request-path warnings
	// carry a request_id when Obs is set); nil discards them.
	Logger *slog.Logger
	// Now, when set, supplies the clock for cache-visible timestamps
	// (lookups, placement, expiration ages) — the sim↔live parity test
	// injects a trace-driven clock here. Socket deadlines and latency
	// metrics always use the real clock. Nil means time.Now.
	Now func() time.Time
}

// Result describes how one request was served by a live node.
type Result struct {
	Outcome metrics.Outcome
	// Size is the number of body bytes received/served.
	Size int64
	// Responder is the HTTP address of the cache that served a remote
	// hit, or "".
	Responder string
	// Stored reports whether this node kept a copy.
	Stored bool
	// Promoted reports whether the responder refreshed its copy instead
	// (the scheme's responder-side rule, echoed back by the engine).
	Promoted bool
	// Coalesced reports that this request rode a concurrent resolution of
	// the same URL as a single-flight follower instead of fetching itself.
	Coalesced bool
	// TraceID is the group-wide trace identifier when the request was
	// sampled ("" otherwise) — the handle for finding this request's
	// spans on every node it touched (/debug/trace?trace=...).
	TraceID string
}

// Node is a live cooperative cache node.
type Node struct {
	id            string
	scheme        core.Scheme
	originAddr    string
	parentAddr    string
	icpTimeout    time.Duration
	dialTimeout   time.Duration
	fetchTimeout  time.Duration
	fetchAttempts int
	location      resolve.Location
	hashName      string
	nowFn         func() time.Time
	engine        *resolve.Engine
	digests       *digestState
	health        *health.Tracker
	robust        metrics.Robustness
	dg            metrics.Digest
	faults        *faults.Injector
	obs           *obs.Telemetry
	om            *nodeObs
	logger        *slog.Logger

	// Overload protection: originSem bounds concurrent parent/origin
	// fetches; inflight (nil when shedding is off) bounds concurrent
	// Request calls, shedding after shedWait. Both are plain buffered
	// channels used as counting semaphores.
	originSem chan struct{}
	inflight  chan struct{}
	shedWait  time.Duration

	// The request path has no global lock: the sharded store serialises
	// per shard, the peer set is an immutable snapshot swapped atomically
	// by every membership change, and the digest machinery has its own
	// small mutex. The store is the tiered facade; without a disk tier it
	// is a zero-cost pass-through to the sharded memory store.
	store     *cache.TieredStore
	blobStore *blob.Store // nil without a disk tier
	peers     atomic.Pointer[[]Peer]
	// hash is the consistent-hash locator under LocateHash, rebuilt on
	// every membership change and swapped atomically like the peer
	// snapshot.
	hash atomic.Pointer[resolve.HashLocator]

	// Elastic membership (membership.go, migrate.go). mem guards the
	// configured member list and the ejected set; epoch counts published
	// topologies; draining is set for good by DrainHandoff.
	mem struct {
		sync.Mutex
		members []Peer
		ejected map[string]*ejection
	}
	epoch        atomic.Int64
	draining     atomic.Bool
	warmUntil    time.Time // relay-only until then under LocateHash; zero when off
	ejectAfter   time.Duration
	readmitProbe time.Duration
	migrateConc  int
	migrateRate  int
	migrateKick  chan struct{}
	lastMig      atomic.Pointer[MigrationReport]
	drainMu      sync.Mutex

	digestMu sync.Mutex // guards digests (own summary + fetched filters)

	persister *persist.Persister
	snapEvery time.Duration
	recovery  *RecoveryReport

	icpServer *icp.Server
	icpClient *icp.Client
	httpLn    net.Listener

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// RecoveryReport describes a warm restart: what the persistence layer
// found on disk and what was actually loaded back into the store.
type RecoveryReport struct {
	persist.Report
	// Restored is what made it into the live store.
	Restored persist.RestoreStats
}

// New starts a node's ICP responder and fetch listener. Close releases
// both.
func New(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("netnode: nil store")
	}
	if cfg.Scheme == nil {
		return nil, errors.New("netnode: nil scheme")
	}
	if cfg.ICPTimeout <= 0 {
		cfg.ICPTimeout = DefaultICPTimeout
	}
	if cfg.DialTimeout < 0 {
		return nil, fmt.Errorf("netnode: negative DialTimeout %v", cfg.DialTimeout)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.FetchTimeout < 0 {
		return nil, fmt.Errorf("netnode: negative FetchTimeout %v", cfg.FetchTimeout)
	}
	if cfg.FetchTimeout == 0 {
		cfg.FetchTimeout = DefaultFetchTimeout
	}
	if cfg.FetchAttempts < 0 {
		return nil, fmt.Errorf("netnode: negative FetchAttempts %d", cfg.FetchAttempts)
	}
	if cfg.FetchAttempts == 0 {
		cfg.FetchAttempts = DefaultFetchAttempts
	}
	if cfg.OriginConcurrency < 0 {
		return nil, fmt.Errorf("netnode: negative OriginConcurrency %d", cfg.OriginConcurrency)
	}
	if cfg.OriginConcurrency == 0 {
		cfg.OriginConcurrency = DefaultOriginConcurrency
	}
	if cfg.MaxInflight < 0 {
		return nil, fmt.Errorf("netnode: negative MaxInflight %d", cfg.MaxInflight)
	}
	if cfg.ShedQueueWait < 0 {
		return nil, fmt.Errorf("netnode: negative ShedQueueWait %v", cfg.ShedQueueWait)
	}
	if cfg.ShedQueueWait > 0 && cfg.MaxInflight == 0 {
		return nil, errors.New("netnode: ShedQueueWait requires MaxInflight")
	}
	if cfg.MaxInflight > 0 && cfg.ShedQueueWait == 0 {
		cfg.ShedQueueWait = DefaultShedQueueWait
	}
	if cfg.EjectAfter < 0 {
		return nil, fmt.Errorf("netnode: negative EjectAfter %v", cfg.EjectAfter)
	}
	if cfg.ReadmitProbe < 0 {
		return nil, fmt.Errorf("netnode: negative ReadmitProbe %v", cfg.ReadmitProbe)
	}
	if cfg.ReadmitProbe > 0 && cfg.EjectAfter == 0 {
		return nil, errors.New("netnode: ReadmitProbe requires EjectAfter")
	}
	if cfg.EjectAfter > 0 && cfg.ReadmitProbe == 0 {
		cfg.ReadmitProbe = DefaultReadmitProbe
	}
	if cfg.MigrateConcurrency < 0 {
		return nil, fmt.Errorf("netnode: negative MigrateConcurrency %d", cfg.MigrateConcurrency)
	}
	if cfg.MigrateConcurrency == 0 {
		cfg.MigrateConcurrency = DefaultMigrateConcurrency
	}
	if cfg.MigrateRate < 0 {
		return nil, fmt.Errorf("netnode: negative MigrateRate %d", cfg.MigrateRate)
	}
	if cfg.JoinWarmup < 0 {
		return nil, fmt.Errorf("netnode: negative JoinWarmup %v", cfg.JoinWarmup)
	}
	if cfg.SnapshotInterval < 0 {
		return nil, fmt.Errorf("netnode: negative SnapshotInterval %v", cfg.SnapshotInterval)
	}
	if cfg.JournalBatch < 0 {
		return nil, fmt.Errorf("netnode: negative JournalBatch %d", cfg.JournalBatch)
	}
	if cfg.JournalBatch > 0 && cfg.DataDir == "" {
		return nil, errors.New("netnode: JournalBatch requires DataDir")
	}
	if cfg.SnapshotInterval > 0 && cfg.DataDir == "" {
		return nil, errors.New("netnode: SnapshotInterval requires DataDir")
	}
	if cfg.DataDir != "" && cfg.SnapshotInterval == 0 {
		cfg.SnapshotInterval = DefaultSnapshotInterval
	}
	if cfg.DiskCapacity < 0 {
		return nil, fmt.Errorf("netnode: negative DiskCapacity %d", cfg.DiskCapacity)
	}
	if cfg.DiskCapacity > 0 && cfg.DiskDir == "" {
		return nil, errors.New("netnode: DiskCapacity requires DiskDir")
	}
	if cfg.DiskDir != "" && cfg.DiskCapacity == 0 {
		return nil, errors.New("netnode: DiskDir requires DiskCapacity")
	}
	if cfg.DiskDemote != "" && cfg.DiskDir == "" {
		return nil, errors.New("netnode: DiskDemote requires DiskDir")
	}
	demotePolicy, err := cache.ParseDemotePolicy(cfg.DiskDemote)
	if err != nil {
		return nil, fmt.Errorf("netnode: %w", err)
	}
	if cfg.Location == 0 {
		cfg.Location = resolve.LocateICP
	}
	if cfg.Location == resolve.LocateHash && cfg.ParentAddr != "" {
		// Hash routing partitions the URL space across the group; a
		// hierarchical parent would reintroduce a second copy holder.
		return nil, errors.New("netnode: hash location is incompatible with a parent")
	}
	if cfg.DigestDeltaWindow < 0 {
		return nil, fmt.Errorf("netnode: negative DigestDeltaWindow %d", cfg.DigestDeltaWindow)
	}
	if cfg.DigestDeltaWindow > 0 && cfg.Location != resolve.LocateDigest {
		return nil, errors.New("netnode: DigestDeltaWindow requires digest location")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	// Adopt the caller's store behind the concurrency-safe sharded API; a
	// plain Store becomes one shard behind one lock (identical behaviour).
	var store *cache.ShardedStore
	switch s := cfg.Store.(type) {
	case *cache.ShardedStore:
		store = s
	case *cache.Store:
		store = cache.SingleShard(s)
	default:
		return nil, fmt.Errorf("netnode: unsupported store type %T", cfg.Store)
	}
	// The tiered facade always fronts the memory store. Without DiskDir it
	// is a pure pass-through (identical behaviour and cost); with it, the
	// blob tier recovers its own index here — a warm restart that never
	// re-reads blob bodies — and the EA-aware controller starts demoting
	// memory victims that still have life ahead of them.
	var blobStore *blob.Store
	tcfg := cache.TieredConfig{Memory: store, Demote: demotePolicy}
	if cfg.DiskDir != "" {
		shape := store.TrackerState()
		bs, err := blob.Open(blob.Config{
			Dir:               cfg.DiskDir,
			Capacity:          cfg.DiskCapacity,
			ExpirationWindow:  shape.Window,
			ExpirationHorizon: shape.Horizon,
		})
		if err != nil {
			return nil, fmt.Errorf("netnode: disk tier: %w", err)
		}
		blobStore = bs
		tcfg.Disk = bs
	}
	tiered, err := cache.NewTiered(tcfg)
	if err != nil {
		if blobStore != nil {
			_ = blobStore.Close()
		}
		return nil, fmt.Errorf("netnode: %w", err)
	}
	n := &Node{
		id:            cfg.ID,
		scheme:        cfg.Scheme,
		originAddr:    cfg.OriginAddr,
		parentAddr:    cfg.ParentAddr,
		icpTimeout:    cfg.ICPTimeout,
		dialTimeout:   cfg.DialTimeout,
		fetchTimeout:  cfg.FetchTimeout,
		fetchAttempts: cfg.FetchAttempts,
		location:      cfg.Location,
		nowFn:         cfg.Now,
		faults:        cfg.Faults,
		logger:        cfg.Logger,
		store:         tiered,
		blobStore:     blobStore,
		originSem:     make(chan struct{}, cfg.OriginConcurrency),
		shedWait:      cfg.ShedQueueWait,
		ejectAfter:    cfg.EjectAfter,
		readmitProbe:  cfg.ReadmitProbe,
		migrateConc:   cfg.MigrateConcurrency,
		migrateRate:   cfg.MigrateRate,
		icpClient:     icp.NewClient(),
		closed:        make(chan struct{}),
	}
	n.mem.ejected = make(map[string]*ejection)
	if cfg.JoinWarmup > 0 && cfg.Location == resolve.LocateHash {
		n.warmUntil = time.Now().Add(cfg.JoinWarmup)
	}
	if cfg.MaxInflight > 0 {
		n.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	n.obs = cfg.Obs
	n.om = newNodeObs(n, cfg.Obs)

	// The breaker feeds the robustness counters; a user callback (tests)
	// is chained after them.
	healthCfg := cfg.Health
	userStateChange := healthCfg.OnStateChange
	healthCfg.OnStateChange = func(peer string, from, to health.State) {
		switch {
		case to == health.Dead:
			n.robust.BreakerOpen()
		case from == health.Dead:
			n.robust.BreakerClose()
		}
		n.warn("peer breaker state change", nil, "peer", peer, "from", from, "to", to)
		if userStateChange != nil {
			userStateChange(peer, from, to)
		}
	}
	n.health = health.NewTracker(healthCfg)

	if cfg.Faults != nil {
		// Chaos mode: every socket the node opens goes through the
		// injector — the shared ICP query socket here (bound once, on
		// the first query), fetch dials in Node.dial, and accepted
		// fetch conns below.
		n.icpClient.Listen = func() (net.PacketConn, error) {
			c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				if c, err = net.ListenUDP("udp", nil); err != nil {
					return nil, err
				}
			}
			return cfg.Faults.WrapPacketConn(c), nil
		}
	}
	if cfg.Location == resolve.LocateDigest {
		// The digest advertises both tiers (disk-resident documents are
		// servable), so the filter is sized for the whole logical store.
		ds, err := newDigestState(cfg.Digest, cfg.Store.Capacity()+cfg.DiskCapacity, cfg.DigestRefresh, cfg.DigestDeltaWindow)
		if err != nil {
			return nil, fmt.Errorf("netnode: %w", err)
		}
		n.digests = ds
	}

	// The icp and persist packages keep their *log.Logger interface; bridge
	// the structured logger into them.
	var stdLogger *log.Logger
	if cfg.Logger != nil {
		stdLogger = slog.NewLogLogger(cfg.Logger.Handler(), slog.LevelWarn)
	}

	// Recover persisted state into the store before any server can touch
	// it, then journal every mutation from here on. Persistence observes
	// the store through its event sink, so the replacement policies and
	// the request path stay oblivious to it.
	if cfg.DataDir != "" {
		p, err := persist.Open(persist.Config{
			Dir:         cfg.DataDir,
			Logger:      stdLogger,
			BatchFrames: cfg.JournalBatch,
		})
		if err != nil {
			return nil, fmt.Errorf("netnode: %w", err)
		}
		stats := persist.Restore(n.store, p.RecoveredState())
		if stats.Skipped > 0 {
			n.warn("recovery skipped entries that no longer fit", nil, "skipped", stats.Skipped)
		}
		if stats.DiskLost > 0 {
			n.warn("recovery lost disk-tier residency claims", nil,
				"lost", stats.DiskLost, "restored", stats.DiskRestored)
		}
		n.persister = p
		n.snapEvery = cfg.SnapshotInterval
		n.recovery = &RecoveryReport{Report: p.Report(), Restored: stats}
		n.om.setRecovery(*n.recovery)
	}

	// The own digest is seeded from the (possibly just recovered) store
	// before the event sink starts feeding it; from here on every cache
	// mutation maintains the advertised summary incrementally and this is
	// the last full URL scan a healthy node ever performs.
	if n.digests != nil {
		n.digests.own.Seed(n.store.URLs())
	}

	// Chain the persistence, telemetry, and digest event sinks: all
	// observe the store without the replacement policies knowing.
	var sinks []func(cache.Event)
	if n.persister != nil {
		sinks = append(sinks, n.persister.Append)
	}
	if n.om != nil {
		sinks = append(sinks, n.om.cacheEvent)
	}
	if n.digests != nil {
		sinks = append(sinks, n.digestEvent)
	}
	switch len(sinks) {
	case 0:
	case 1:
		n.store.SetEventSink(sinks[0])
	default:
		chain := sinks
		n.store.SetEventSink(func(ev cache.Event) {
			for _, s := range chain {
				s(ev)
			}
		})
	}

	icpServer, err := icp.NewServer(cfg.ICPAddr, icp.HandlerFunc(n.handleICP), stdLogger)
	if err != nil {
		n.closePersister()
		n.closeDiskTier()
		return nil, err
	}
	n.icpServer = icpServer

	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		_ = icpServer.Close()
		n.closePersister()
		n.closeDiskTier()
		return nil, fmt.Errorf("netnode: listen %q: %w", cfg.HTTPAddr, err)
	}
	if cfg.Faults != nil {
		ln = cfg.Faults.WrapListener(ln)
	}
	n.httpLn = ln

	n.hashName = cfg.HashName
	if n.hashName == "" {
		n.hashName = ln.Addr().String()
	}
	// The engine owns the request lifecycle; the node supplies its
	// store, transport, locators, and telemetry through the adapters in
	// resolve.go. A broken parent degrades to the origin when one is
	// known — the live node's availability posture. Concurrent misses for
	// one URL are coalesced single-flight; the callbacks feed the
	// robustness counters and telemetry.
	co := resolve.NewCoalescer()
	co.OnFollower = func(string) {
		n.robust.Coalesced()
		n.om.coalesced()
	}
	co.OnElect = func(_ string, retry bool) {
		n.robust.LeaderElection()
		if retry {
			n.robust.LeaderRetry()
		}
		n.om.leaderElection(retry)
	}
	n.engine = &resolve.Engine{
		ID:              "netnode " + n.id,
		Store:           nodeStore{n},
		Scheme:          n.scheme,
		Locator:         nodeLocator{n},
		Transport:       nodeTransport{n},
		Hooks:           nodeHooks{n},
		Coalescer:       co,
		DegradeToOrigin: true,
	}

	n.wg.Add(1)
	go n.acceptLoop()
	if n.persister != nil && n.snapEvery > 0 {
		n.wg.Add(1)
		go n.snapshotLoop()
	}
	if n.location == resolve.LocateHash {
		// Only hash placement is structural enough that a membership
		// change moves document ownership; the migrator follows it.
		n.migrateKick = make(chan struct{}, 1)
		n.wg.Add(1)
		go n.migratorLoop()
	}
	if n.ejectAfter > 0 {
		n.wg.Add(1)
		go n.membershipLoop()
	}
	if n.digests != nil {
		// Background digest revalidation: known peer replicas are kept
		// fresh off the request path (misses serve stale while a
		// single-flight refresh runs).
		n.wg.Add(1)
		go n.digestLoop()
	}
	return n, nil
}

// closePersister detaches and closes the persistence layer (constructor
// error paths only).
func (n *Node) closePersister() {
	if n.persister == nil {
		return
	}
	n.store.SetEventSink(nil)
	_ = n.persister.Close()
	n.persister = nil
}

// closeDiskTier closes the blob tier (constructor error paths only; the
// normal path closes it through shutdown).
func (n *Node) closeDiskTier() {
	if n.blobStore != nil {
		_ = n.blobStore.Close()
		n.blobStore = nil
	}
}

// ID returns the node name.
func (n *Node) ID() string { return n.id }

// ICPAddr returns the bound UDP address.
func (n *Node) ICPAddr() *net.UDPAddr { return n.icpServer.Addr() }

// HTTPAddr returns the bound TCP address.
func (n *Node) HTTPAddr() string { return n.httpLn.Addr().String() }

// SetPeers replaces the whole configured member set (boot wiring; use
// AddPeer/RemovePeer for incremental changes) and drops breaker and
// ejection state for peers that left it. The active set is published as
// an immutable snapshot behind an atomic pointer: the request path reads
// it with one atomic load and no per-request copy, and never observes a
// half-updated set.
func (n *Node) SetPeers(peers []Peer) {
	n.mem.Lock()
	defer n.mem.Unlock()
	n.mem.members = append([]Peer(nil), peers...)
	if len(n.mem.ejected) > 0 {
		present := make(map[string]bool, len(peers))
		for _, p := range peers {
			present[p.HTTP] = true
		}
		for addr := range n.mem.ejected {
			if !present[addr] {
				delete(n.mem.ejected, addr)
			}
		}
	}
	n.publishLocked()
}

// peerList returns the current immutable peer snapshot. Callers must not
// mutate it.
func (n *Node) peerList() []Peer {
	if p := n.peers.Load(); p != nil {
		return *p
	}
	return nil
}

// Robustness returns the node's degradation counters: peer failures,
// retries, fallbacks to parent/origin, and breaker transitions.
func (n *Node) Robustness() metrics.RobustnessSnapshot { return n.robust.Snapshot() }

// PeerHealth returns the breaker state of every tracked peer, keyed by the
// peer's fetch (HTTP) address.
func (n *Node) PeerHealth() []health.PeerStatus { return n.health.Snapshot() }

// Close stops both servers, waits for in-flight handlers, checkpoints
// persistent state, and releases the data directory. It is idempotent and
// safe to call concurrently — with other Close/Drain calls and with an
// in-flight Request, which at worst fails with a connection error.
func (n *Node) Close() error { return n.shutdown(0) }

// Drain is the graceful variant of Close: stop accepting new work
// immediately, give in-flight handlers up to timeout to finish (instead
// of waiting indefinitely), write a final snapshot, then release
// everything. Handlers still running at the deadline keep their journal
// appends — recovery replays them on top of the final snapshot.
func (n *Node) Drain(timeout time.Duration) error { return n.shutdown(timeout) }

// shutdown runs the close sequence exactly once; wait > 0 bounds the
// in-flight handler wait.
func (n *Node) shutdown(wait time.Duration) error {
	n.closeOnce.Do(func() {
		close(n.closed)
		icpErr := n.icpServer.Close()
		lnErr := n.httpLn.Close()

		done := make(chan struct{})
		go func() {
			n.wg.Wait()
			close(done)
		}()
		if wait > 0 {
			select {
			case <-done:
			case <-time.After(wait):
				n.warn("drain deadline passed with handlers in flight", nil, "deadline", wait)
			}
		} else {
			<-done
		}

		// Tier-drain barrier BEFORE the journal's final rotate: Quiesce
		// takes the all-shards checkpoint barrier (every in-flight demotion
		// and promotion mutates under a shard lock, so acquiring all of
		// them means none is mid-flight) and fsyncs the blob index. Only
		// then does the final checkpoint capture and rotate, so the
		// snapshot's disk-residency claims are backed by durable blobs.
		if err := n.store.Quiesce(); err != nil {
			n.warn("disk tier quiesce failed", nil, "err", err)
		}
		if n.persister != nil {
			if err := n.checkpoint(); err != nil {
				n.warn("final snapshot failed", nil, "err", err)
			}
			n.store.SetEventSink(nil)
			if err := n.persister.Close(); err != nil {
				n.warn("close persister failed", nil, "err", err)
			}
		}
		if err := n.store.CloseDisk(); err != nil {
			n.warn("close disk tier failed", nil, "err", err)
		}
		_ = n.icpClient.Close()

		if icpErr != nil {
			n.closeErr = icpErr
		} else {
			n.closeErr = lnErr
		}
	})
	return n.closeErr
}

// Recovery reports what the last warm restart recovered; ok is false when
// the node runs without persistence.
func (n *Node) Recovery() (RecoveryReport, bool) {
	if n.recovery == nil {
		return RecoveryReport{}, false
	}
	return *n.recovery, true
}

// snapshotLoop checkpoints every snapEvery until the node closes.
func (n *Node) snapshotLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.snapEvery)
	defer t.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-t.C:
			if err := n.checkpoint(); err != nil {
				n.warn("snapshot failed", nil, "err", err)
			}
		}
	}
}

// checkpoint captures the store and rotates the journal at one consistent
// instant (all shard locks held, so every event before the capture is in
// the rotated-away journal and every later one in the new generation),
// then writes the snapshot without blocking the request path.
func (n *Node) checkpoint() error {
	start := time.Now()
	var st persist.State
	err := n.store.Checkpoint(func(view cache.StoreView) error {
		st = persist.CaptureState(view)
		return n.persister.Rotate()
	})
	if err == nil {
		err = n.persister.WriteSnapshot(st)
	}
	n.om.observeCheckpoint(time.Since(start), err)
	return err
}

// now is the node's cache-visible clock (Config.Now; time.Now unless a
// parity harness injected one). Socket deadlines and latency metrics
// read time.Now directly.
func (n *Node) now() time.Time { return n.nowFn() }

// ExpirationAge returns the node's current contention signal.
func (n *Node) ExpirationAge() time.Duration {
	return n.store.ExpirationAge(n.now())
}

// Contains reports whether the node caches url, for tests.
func (n *Node) Contains(url string) bool {
	return n.store.Contains(url)
}

// Len returns how many documents the node currently caches, for tests
// and the parity harness.
func (n *Node) Len() int { return n.store.Len() }

// Request serves a client request end-to-end over the real protocols:
// local lookup, ICP fan-out, remote or origin fetch, placement decision.
// With telemetry configured it also records a trace (one span per stage,
// with the EA decision's two expiration ages on the placement span) and the
// outcome/latency metrics.
func (n *Node) Request(url string, sizeHint int64) (Result, error) {
	// Front-door overload gate: refuse fast, before any of the trace or
	// metrics machinery spends work on a request the node cannot absorb.
	if n.inflight != nil {
		if err := n.admit(); err != nil {
			return Result{}, err
		}
		defer func() { <-n.inflight }()
	}
	start := time.Now()
	tr := n.obs.StartTrace(n.id, url)
	res, err := n.serveRequest(tr, url, sizeHint)
	n.om.observeRequest(res, err, time.Since(start))
	if tr != nil {
		res.TraceID = tr.TraceID
		if err != nil {
			tr.Outcome = outcomeError
			tr.Err = err.Error()
		} else {
			tr.Outcome = res.Outcome.String()
			tr.SizeBytes = res.Size
			tr.Responder = res.Responder
			tr.Stored = res.Stored
		}
		n.obs.Finish(tr)
	}
	return res, err
}

// serveRequest is the request lifecycle proper, delegated to the shared
// resolution engine (internal/resolve) — the same decision code the
// simulator runs. tr may be nil (telemetry off); it rides through the
// engine as the opaque request context, and every trace entry point is
// nil-safe. No global lock anywhere on the path: the store serialises
// per shard, the peer and hash-ring snapshots are immutable and swapped
// atomically, and the engine itself is stateless per request.
func (n *Node) serveRequest(tr *obs.Trace, url string, sizeHint int64) (Result, error) {
	res, err := n.engine.Resolve(tr, url, sizeHint, n.now())
	if err != nil {
		return Result{}, err
	}
	return Result{
		Outcome:   res.Outcome,
		Size:      res.Doc.Size,
		Responder: res.Responder,
		Stored:    res.Stored,
		Promoted:  res.Promoted,
		Coalesced: res.Coalesced,
	}, nil
}

// admit takes an in-flight slot, waiting at most shedWait for one before
// shedding the request. Only called when MaxInflight is configured.
func (n *Node) admit() error {
	select {
	case n.inflight <- struct{}{}:
		return nil
	default:
	}
	timer := time.NewTimer(n.shedWait)
	defer timer.Stop()
	select {
	case n.inflight <- struct{}{}:
		return nil
	case <-timer.C:
		n.robust.Shed()
		n.om.shed()
		return fmt.Errorf("%w (%d in flight, waited %v)", ErrOverloaded, cap(n.inflight), n.shedWait)
	}
}

// acquireUpstream takes an origin-semaphore slot, so at most
// OriginConcurrency parent/origin fetches run at once. A contended
// acquire is counted and bounded by the request's remaining fetch budget
// (FetchTimeout) — a saturated upstream fails the request instead of
// parking goroutines forever.
func (n *Node) acquireUpstream(tr *obs.Trace) error {
	select {
	case n.originSem <- struct{}{}:
		return nil
	default:
	}
	n.robust.OriginWait()
	start := time.Now()
	timer := time.NewTimer(n.fetchTimeout)
	defer timer.Stop()
	select {
	case n.originSem <- struct{}{}:
		n.om.observeUpstreamWait(time.Since(start))
		return nil
	case <-timer.C:
		err := fmt.Errorf("netnode %s: upstream concurrency limit %d saturated for %v", n.id, cap(n.originSem), n.fetchTimeout)
		n.warn("upstream semaphore saturated", tr, "limit", cap(n.originSem), "waited", n.fetchTimeout)
		return err
	}
}

func (n *Node) releaseUpstream() { <-n.originSem }

// recordFanout feeds the fan-out's per-peer evidence to the breaker: every
// reply (hit or miss) is a success, an unsendable datagram is a failure,
// and — only when the query ran out its full timeout — silence is a
// failure too. A query resolved early by a hit says nothing about peers
// that simply had not answered yet.
func (n *Node) recordFanout(active []Peer, res icp.Result) {
	byICP := make(map[string]Peer, len(active))
	for _, p := range active {
		byICP[p.ICP.String()] = p
	}
	heard := make(map[string]bool, len(res.Answered))
	for _, a := range res.Answered {
		if p, ok := byICP[a.String()]; ok {
			heard[p.HTTP] = true
			n.health.ReportSuccess(p.HTTP)
		}
	}
	for _, a := range res.SendFailed {
		if p, ok := byICP[a.String()]; ok {
			heard[p.HTTP] = true
			n.health.ReportFailure(p.HTTP)
			n.robust.PeerFailure()
		}
	}
	silent := 0
	if res.TimedOut {
		for _, p := range active {
			if !heard[p.HTTP] {
				silent++
				n.health.ReportFailure(p.HTTP)
				n.robust.PeerFailure()
			}
		}
	}
	n.om.observeFanout(len(res.Answered), silent, len(res.SendFailed))
}

// fetchUpstream fetches from the parent or origin with the configured
// retry budget, under the origin-concurrency semaphore. Transport errors
// are retried; a NotFound answer is final (repeating the question will
// not change it).
func (n *Node) fetchUpstream(tr *obs.Trace, addr, url string, sizeHint int64, reqAge time.Duration, resolve bool) (int64, time.Duration, string, error) {
	if err := n.acquireUpstream(tr); err != nil {
		return 0, 0, "", err
	}
	defer n.releaseUpstream()
	var lastErr error
	for attempt := 0; attempt < n.fetchAttempts; attempt++ {
		if attempt > 0 {
			n.robust.Retry()
		}
		size, age, source, err := n.fetchFrom(tr, addr, url, sizeHint, reqAge, resolve)
		if err == nil {
			return size, age, source, nil
		}
		lastErr = err
		if errors.Is(err, errNotFound) {
			break
		}
		n.warn("upstream fetch attempt failed", tr,
			"url", url, "upstream", addr,
			"attempt", attempt+1, "attempts", n.fetchAttempts, "err", err)
	}
	return 0, 0, "", lastErr
}

func (n *Node) putIfFits(doc cache.Document) bool {
	_, err := n.store.Put(doc, n.now())
	return err == nil
}

// handleICP answers neighbours' queries against the local cache without
// touching replacement state.
func (n *Node) handleICP(url string) icp.Opcode {
	if n.store.Contains(url) {
		return icp.OpHit
	}
	return icp.OpMiss
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.httpLn.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			n.warn("accept failed", nil, "err", err)
			continue
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

// serveConn is the responder side of the inter-proxy fetch: serve the
// document with this node's expiration age piggybacked on the response,
// applying the responder-side placement rule against the age piggybacked
// on the request. A request flagged Resolve makes this node act as a
// hierarchical parent: on a local miss it fetches the document from its
// own upstream, keeps a copy only if the §3.3 parent rule says so, and
// reports whether the body came from a cache or the origin.
func (n *Node) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(n.fetchTimeout))

	br := getReader(conn)
	req, err := hproto.ReadRequest(br)
	if err != nil {
		putReader(br)
		n.warn("bad fetch request", nil, "err", err)
		return
	}
	if req.AgeClamped {
		n.robust.WireClamp()
		n.warn("clamped bad requester age", nil, "remote", conn.RemoteAddr().String())
	}
	if req.Push {
		// Migration handoff: the body still sits (partly) in the bufio
		// reader, so it is drained before the reader is pooled again.
		n.servePush(conn, br, req)
		putReader(br)
		return
	}
	putReader(br)

	// The reserved digest URL serves this node's own cache digest —
	// bare for the legacy full transfer, ?since=<gen> for the versioned
	// delta sync.
	if isDigestURL(req.URL) {
		n.serveDigestRequest(conn, req.URL)
		return
	}

	// Remote-parented tracing: a sampled requester piggybacks its trace
	// context on the request, and this node continues the same trace —
	// same group-wide trace ID, the requester's record as parent — so the
	// whole exchange stitches into one timeline. A malformed or looping
	// context is dropped and counted, never fatal: tracing must not be
	// able to break the fetch path.
	var rtr *obs.Trace
	if req.Trace != "" {
		tc, perr := obs.ParseTraceContext(req.Trace)
		switch {
		case perr != nil:
			n.robust.TraceClamp()
			n.warn("dropped malformed trace context", nil, "remote", conn.RemoteAddr().String())
		case tc.Hop >= obs.MaxTraceHops:
			n.robust.TraceClamp()
			n.warn("dropped trace context at hop limit", nil, "trace", tc.TraceID)
		default:
			rtr = n.obs.StartRemoteTrace(n.id, req.URL, tc)
		}
	}
	serveSpan := rtr.OpenSpan(obs.StageServe, time.Now())

	respAge := n.store.ExpirationAge(n.now())
	var (
		doc cache.Document
		ok  bool
	)
	if n.location == resolve.LocateHash {
		// Hash routing: this node is the URL's home and owns the
		// group's only copy — serving it is a real hit for the home's
		// replacement state, not a negotiable promotion.
		doc, ok = n.store.Get(req.URL, n.now())
	} else {
		doc, ok = n.store.Peek(req.URL)
		if ok {
			// The responder-side EA rule: refresh this copy's replacement
			// state iff the requester's cache is under more pressure than
			// ours (paper §3.4). Counted, audited, and stamped on the
			// remote-parented trace like every placement decision.
			if n.scheme.OnRemoteHit(req.RequesterAge, respAge).PromoteAtResponder {
				n.store.Touch(req.URL, n.now())
				n.om.decision(roleResponder, decisionPromote)
				n.auditDecision(rtr, roleResponder, req.URL, obs.DecisionPromote, doc.Size, respAge, req.RequesterAge)
			} else {
				n.om.decision(roleResponder, decisionReject)
				n.auditDecision(rtr, roleResponder, req.URL, obs.DecisionReject, doc.Size, respAge, req.RequesterAge)
			}
		}
	}

	switch {
	case ok:
		err = hproto.WriteResponse(conn, hproto.Response{
			Status:        hproto.StatusOK,
			ResponderAge:  respAge,
			ContentLength: doc.Size,
			Source:        hproto.SourceCache,
			Trace:         echoContext(rtr),
		}, zeroReader(doc.Size))
		if rtr != nil {
			rtr.Outcome = outcomeServeHit
			rtr.SizeBytes = doc.Size
		}
	case req.Resolve:
		err = n.resolveAndServe(conn, req, respAge, rtr)
	default:
		err = hproto.WriteResponse(conn, hproto.Response{
			Status:       hproto.StatusNotFound,
			ResponderAge: respAge,
			Trace:        echoContext(rtr),
		}, nil)
		if rtr != nil {
			rtr.Outcome = outcomeServeMiss
		}
	}
	if err != nil {
		n.warn("write fetch response failed", rtr, "err", err)
		rtr.SpanErr(err)
	}
	if rtr != nil {
		rtr.CloseSpan(serveSpan, time.Since(rtr.Start))
		rtr.RequesterAgeMS = obs.AgeMS(req.RequesterAge)
		rtr.ResponderAgeMS = obs.AgeMS(respAge)
		n.obs.Finish(rtr)
	}
}

// Responder-side trace outcomes (requester-side ones come from
// metrics.Outcome via Result).
const (
	outcomeServeHit     = "serve-hit"
	outcomeServeMiss    = "serve-miss"
	outcomeServeResolve = "serve-resolve"
)

// echoContext is the X-Trace-Context value echoed on responses: this
// node's own record as the parent, so the requester can point at the
// responder's span. Empty ("" — header omitted) for untraced exchanges.
func echoContext(rtr *obs.Trace) string {
	if rtr == nil {
		return ""
	}
	return rtr.Context().String()
}

// resolveAndServe is the parent's miss path: fetch the document from this
// node's own parent (recursively, preserving the source tag) or origin,
// store a copy iff this node's expiration age strictly exceeds the child's
// (core.Scheme.OnParentResolve), and relay the body. rtr is the
// remote-parented trace continued from the requester's context (nil for
// untraced exchanges); the upstream fetch rides on it, so a recursive
// parent chain propagates the same trace ID all the way up.
func (n *Node) resolveAndServe(conn net.Conn, req hproto.Request, myAge time.Duration, rtr *obs.Trace) error {
	var (
		size   int64
		source string
		err    error
	)
	switch {
	case n.parentAddr != "":
		size, _, source, err = n.fetchUpstream(rtr, n.parentAddr, req.URL, req.SizeHint, myAge, true)
	case n.originAddr != "":
		size, _, _, err = n.fetchUpstream(rtr, n.originAddr, req.URL, req.SizeHint, myAge, false)
		source = hproto.SourceOrigin
	default:
		return hproto.WriteResponse(conn, hproto.Response{
			Status:       hproto.StatusNotFound,
			ResponderAge: myAge,
			Trace:        echoContext(rtr),
		}, nil)
	}
	if err != nil {
		n.warn("parent resolve failed", rtr, "url", req.URL, "err", err)
		return hproto.WriteResponse(conn, hproto.Response{
			Status:       hproto.StatusNotFound,
			ResponderAge: myAge,
			Trace:        echoContext(rtr),
		}, nil)
	}
	keep := n.scheme.OnParentResolve(myAge, req.RequesterAge)
	if n.location == resolve.LocateHash {
		// The (acting) home keeps every document it resolves — the
		// group's only copy must land here — but only for requesters
		// whose ring view matches this node's (see mayKeepResolved);
		// a stale-view requester gets the body relayed without a store.
		keep = n.mayKeepResolved(req.RingFP)
	}
	if n.draining.Load() {
		keep = false
	}
	n.om.decision(roleParent, decisionOf(keep))
	n.auditDecision(rtr, roleParent, req.URL, decisionNames[decisionOf(keep)], size, myAge, req.RequesterAge)
	if keep {
		n.putIfFits(cache.Document{URL: req.URL, Size: size})
	}
	if rtr != nil {
		rtr.Outcome = outcomeServeResolve
		rtr.SizeBytes = size
		rtr.Stored = keep
	}
	return hproto.WriteResponse(conn, hproto.Response{
		Status:        hproto.StatusOK,
		ResponderAge:  myAge,
		ContentLength: size,
		Source:        source,
		Trace:         echoContext(rtr),
	}, zeroReader(size))
}

// warn emits one structured operational warning, tagged with the node ID
// and — when the call sits on a traced request path — the request ID, so
// log lines join up with /debug/trace entries.
func (n *Node) warn(msg string, tr *obs.Trace, attrs ...any) {
	if n.logger == nil {
		return
	}
	attrs = append(attrs, "node", n.id)
	if tr != nil {
		attrs = append(attrs, "request_id", tr.ID)
	}
	n.logger.Warn(msg, attrs...)
}

// errNotFound marks a responder that answered the exchange but does not
// hold (and could not resolve) the document — an application-level miss,
// not a transport failure, so it is never retried and never counts
// against the peer's health.
var errNotFound = errors.New("netnode: document not at responder")

// dial opens the TCP conn for one fetch, through the fault injector when
// one is configured.
func (n *Node) dial(addr string) (net.Conn, error) {
	if n.faults != nil {
		return n.faults.DialTimeout("tcp", addr, n.dialTimeout)
	}
	return net.DialTimeout("tcp", addr, n.dialTimeout)
}

// fetchFrom performs one hproto GET against addr, discarding the body and
// returning its length, the piggybacked responder age, and the body's
// source (cache or origin; an absent header means cache). A non-OK status
// maps to errNotFound; a body shorter than advertised maps to
// hproto.ErrTruncatedBody. A sampled trace's context rides the request
// (X-Trace-Context) so the responder records a remote-parented leg of
// the same trace, and the responder's echoed record is annotated back
// onto tr.
func (n *Node) fetchFrom(tr *obs.Trace, addr, url string, sizeHint int64, requesterAge time.Duration, rslv bool) (int64, time.Duration, string, error) {
	conn, err := n.dial(addr)
	if err != nil {
		return 0, 0, "", fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(n.fetchTimeout))

	req := hproto.Request{
		URL:          url,
		RequesterAge: requesterAge,
		SizeHint:     sizeHint,
		Resolve:      rslv,
	}
	if tr != nil && tr.TraceID != "" {
		req.Trace = tr.Context().String()
	}
	if rslv && n.location == resolve.LocateHash {
		if h := n.hash.Load(); h != nil {
			// The topology fingerprint rides along so the responder can
			// tell failover (matching views) from staleness (mismatch)
			// when deciding whether to keep the resolved copy.
			req.RingFP = h.Fingerprint
		}
	}
	if err := hproto.WriteRequest(conn, req); err != nil {
		return 0, 0, "", err
	}
	br := getReader(conn)
	defer putReader(br)
	resp, err := hproto.ReadResponse(br)
	if err != nil {
		return 0, 0, "", err
	}
	if resp.AgeClamped {
		n.robust.WireClamp()
		n.warn("clamped bad responder age", nil, "responder", addr)
	}
	if resp.Trace != "" && tr != nil {
		if rc, perr := obs.ParseTraceContext(resp.Trace); perr == nil {
			// The responder's echoed record ID: the cross-node edge the
			// stitcher draws from this fetch span to the responder's leg.
			tr.Annotate("remote_id", rc.ParentID)
		} else {
			n.robust.TraceClamp()
		}
	}
	if resp.Status != hproto.StatusOK {
		return 0, resp.ResponderAge, "", fmt.Errorf("fetch %s from %s: status %d: %w", url, addr, resp.Status, errNotFound)
	}
	if _, err := io.CopyN(io.Discard, br, resp.ContentLength); err != nil {
		return 0, resp.ResponderAge, "", fmt.Errorf("read body from %s: %w: %v", addr, hproto.ErrTruncatedBody, err)
	}
	source := resp.Source
	if source == "" {
		source = hproto.SourceCache
	}
	return resp.ContentLength, resp.ResponderAge, source, nil
}

// Serve-path pools. Every accepted fetch conn needs a bufio.Reader for
// the request line and a scratch buffer for the body; both are recycled
// across connections so steady-state remote-hit serving allocates
// nothing per request.
var (
	readerPool = sync.Pool{New: func() any { return bufio.NewReader(nil) }}
	// zeroBufPool holds pre-zeroed body chunks. Bodies are synthetic
	// zeros in this reproduction, so writers send straight from the
	// pooled chunk and never dirty it.
	zeroBufPool = sync.Pool{New: func() any {
		b := make([]byte, 32*1024)
		return &b
	}}
)

// getReader borrows a pooled bufio.Reader bound to r; return it with
// putReader once the parse is done.
func getReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putReader(br *bufio.Reader) {
	br.Reset(nil) // drop the conn reference while pooled
	readerPool.Put(br)
}

// zeroReader streams n zero bytes; cached bodies are synthetic in this
// reproduction (the simulator tracks sizes, not payloads). It implements
// io.WriterTo, so hproto.WriteResponse streams it from a pooled chunk
// instead of allocating a copy buffer per response.
func zeroReader(n int64) io.Reader {
	return &zeroBody{remaining: n}
}

type zeroBody struct{ remaining int64 }

func (z *zeroBody) Read(p []byte) (int, error) {
	if z.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > z.remaining {
		p = p[:z.remaining]
	}
	for i := range p {
		p[i] = 0
	}
	z.remaining -= int64(len(p))
	return len(p), nil
}

func (z *zeroBody) WriteTo(w io.Writer) (int64, error) {
	bp := zeroBufPool.Get().(*[]byte)
	defer zeroBufPool.Put(bp)
	buf := *bp
	var written int64
	for z.remaining > 0 {
		chunk := int64(len(buf))
		if chunk > z.remaining {
			chunk = z.remaining
		}
		nn, err := w.Write(buf[:chunk])
		written += int64(nn)
		z.remaining -= int64(nn)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

var (
	_ io.Reader   = (*zeroBody)(nil)
	_ io.WriterTo = (*zeroBody)(nil)
)

// OriginServer is an hproto origin that serves any URL with a body of the
// hinted size (or 4KB), standing in for the web servers behind the group.
type OriginServer struct {
	ln     net.Listener
	logger *slog.Logger
	wg     sync.WaitGroup
	closed chan struct{}

	mu      sync.Mutex
	fetches int64
}

// NewOriginServer starts an origin on addr ("127.0.0.1:0" for tests).
func NewOriginServer(addr string, logger *slog.Logger) (*OriginServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netnode: origin listen %q: %w", addr, err)
	}
	o := &OriginServer{ln: ln, logger: logger, closed: make(chan struct{})}
	o.wg.Add(1)
	go o.acceptLoop()
	return o, nil
}

// Addr returns the origin's TCP address.
func (o *OriginServer) Addr() string { return o.ln.Addr().String() }

// Fetches returns how many documents the origin served — the traffic the
// cache group failed to absorb.
func (o *OriginServer) Fetches() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fetches
}

// Close stops the origin.
func (o *OriginServer) Close() error {
	select {
	case <-o.closed:
		return nil
	default:
	}
	close(o.closed)
	err := o.ln.Close()
	o.wg.Wait()
	return err
}

func (o *OriginServer) acceptLoop() {
	defer o.wg.Done()
	for {
		conn, err := o.ln.Accept()
		if err != nil {
			select {
			case <-o.closed:
				return
			default:
			}
			if o.logger != nil {
				o.logger.Warn("origin accept failed", "err", err)
			}
			continue
		}
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			o.serveConn(conn)
		}()
	}
}

func (o *OriginServer) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	br := getReader(conn)
	req, err := hproto.ReadRequest(br)
	putReader(br)
	if err != nil {
		return
	}
	size := req.SizeHint
	if size <= 0 {
		size = 4096
	}
	o.mu.Lock()
	o.fetches++
	o.mu.Unlock()
	_ = hproto.WriteResponse(conn, hproto.Response{
		Status:        hproto.StatusOK,
		ResponderAge:  cache.NoContention, // origins have no cache contention
		ContentLength: size,
		Source:        hproto.SourceOrigin,
	}, zeroReader(size))
}
