// Package netnode runs a cooperative caching proxy on real sockets: ICP
// (RFC 2186) over UDP for document location and the hproto inter-proxy
// fetch protocol over TCP, with cache expiration ages piggybacked exactly
// as the paper describes. It demonstrates that the EA scheme's decision
// inputs travel on the wire with no extra messages; the deterministic
// simulator (internal/sim) uses the same decision logic in-process.
package netnode

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/hproto"
	"eacache/internal/icp"
	"eacache/internal/metrics"
	"eacache/internal/proxy"
)

// DefaultICPTimeout bounds how long a node waits for ICP replies before
// treating silent neighbours as misses.
const DefaultICPTimeout = 150 * time.Millisecond

// Peer is a neighbour node's pair of service addresses.
type Peer struct {
	// ICP is the neighbour's UDP query address.
	ICP *net.UDPAddr
	// HTTP is the neighbour's TCP fetch address.
	HTTP string
}

// Config configures a Node.
type Config struct {
	// ID names the node for logs.
	ID string
	// ICPAddr and HTTPAddr are listen addresses ("127.0.0.1:0" picks a
	// free port).
	ICPAddr  string
	HTTPAddr string
	// Store is the node's cache. Required.
	Store *cache.Store
	// Scheme is the placement scheme. Required.
	Scheme core.Scheme
	// OriginAddr is the TCP address of an hproto origin server used to
	// resolve group-wide misses; empty means misses fail (unless a
	// parent is configured).
	OriginAddr string
	// ParentAddr is the fetch (TCP) address of a hierarchical parent
	// node. When set, group-wide misses are resolved through the parent
	// (paper §3.3) instead of directly against the origin.
	ParentAddr string
	// ICPTimeout bounds the query fan-out wait. Defaults to
	// DefaultICPTimeout.
	ICPTimeout time.Duration
	// Location selects ICP queries (default) or Summary-Cache digests
	// fetched from peers over the fetch protocol (see DigestURL).
	Location proxy.Location
	// Digest tunes the summaries when Location is proxy.LocateDigest.
	Digest proxy.DigestConfig
	// DigestRefresh bounds how long a fetched peer digest is trusted.
	// Defaults to DefaultDigestRefresh.
	DigestRefresh time.Duration
	// Logger receives operational errors; nil discards them.
	Logger *log.Logger
}

// Result describes how one request was served by a live node.
type Result struct {
	Outcome metrics.Outcome
	// Size is the number of body bytes received/served.
	Size int64
	// Responder is the HTTP address of the cache that served a remote
	// hit, or "".
	Responder string
	// Stored reports whether this node kept a copy.
	Stored bool
}

// Node is a live cooperative cache node.
type Node struct {
	id         string
	scheme     core.Scheme
	originAddr string
	parentAddr string
	icpTimeout time.Duration
	location   proxy.Location
	digests    *digestState
	logger     *log.Logger

	mu    sync.Mutex // guards store and peers
	store *cache.Store
	peers []Peer

	icpServer *icp.Server
	icpClient *icp.Client
	httpLn    net.Listener

	wg     sync.WaitGroup
	closed chan struct{}
}

// New starts a node's ICP responder and fetch listener. Close releases
// both.
func New(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("netnode: nil store")
	}
	if cfg.Scheme == nil {
		return nil, errors.New("netnode: nil scheme")
	}
	if cfg.ICPTimeout <= 0 {
		cfg.ICPTimeout = DefaultICPTimeout
	}
	if cfg.Location == 0 {
		cfg.Location = proxy.LocateICP
	}
	n := &Node{
		id:         cfg.ID,
		scheme:     cfg.Scheme,
		originAddr: cfg.OriginAddr,
		parentAddr: cfg.ParentAddr,
		icpTimeout: cfg.ICPTimeout,
		location:   cfg.Location,
		logger:     cfg.Logger,
		store:      cfg.Store,
		icpClient:  icp.NewClient(),
		closed:     make(chan struct{}),
	}
	if cfg.Location == proxy.LocateDigest {
		ds, err := newDigestState(cfg.Digest, cfg.Store.Capacity(), cfg.DigestRefresh)
		if err != nil {
			return nil, fmt.Errorf("netnode: %w", err)
		}
		n.digests = ds
	}

	icpServer, err := icp.NewServer(cfg.ICPAddr, icp.HandlerFunc(n.handleICP), cfg.Logger)
	if err != nil {
		return nil, err
	}
	n.icpServer = icpServer

	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		_ = icpServer.Close()
		return nil, fmt.Errorf("netnode: listen %q: %w", cfg.HTTPAddr, err)
	}
	n.httpLn = ln

	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// ID returns the node name.
func (n *Node) ID() string { return n.id }

// ICPAddr returns the bound UDP address.
func (n *Node) ICPAddr() *net.UDPAddr { return n.icpServer.Addr() }

// HTTPAddr returns the bound TCP address.
func (n *Node) HTTPAddr() string { return n.httpLn.Addr().String() }

// SetPeers replaces the neighbour set.
func (n *Node) SetPeers(peers []Peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = append([]Peer(nil), peers...)
}

// Close stops both servers and waits for in-flight handlers.
func (n *Node) Close() error {
	select {
	case <-n.closed:
		return nil
	default:
	}
	close(n.closed)
	icpErr := n.icpServer.Close()
	lnErr := n.httpLn.Close()
	n.wg.Wait()
	if icpErr != nil {
		return icpErr
	}
	return lnErr
}

// ExpirationAge returns the node's current contention signal.
func (n *Node) ExpirationAge() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.ExpirationAge(time.Now())
}

// Contains reports whether the node caches url, for tests.
func (n *Node) Contains(url string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.Contains(url)
}

// Request serves a client request end-to-end over the real protocols:
// local lookup, ICP fan-out, remote or origin fetch, placement decision.
func (n *Node) Request(url string, sizeHint int64) (Result, error) {
	now := time.Now()

	// 1. Local cache.
	n.mu.Lock()
	if doc, ok := n.store.Get(url, now); ok {
		n.mu.Unlock()
		return Result{Outcome: metrics.LocalHit, Size: doc.Size}, nil
	}
	reqAge := n.store.ExpirationAge(time.Now())
	peers := append([]Peer(nil), n.peers...)
	n.mu.Unlock()

	// 2. Locate the document in the group. The lock is NOT held across
	// network operations so concurrent nodes can answer each other.
	if n.location == proxy.LocateDigest {
		for _, p := range n.digestCandidates(peers, url) {
			size, respAge, _, err := fetchFrom(p.HTTP, url, sizeHint, reqAge, false)
			if err != nil {
				// A stale or colliding digest advertised a document
				// the peer no longer has: try the next candidate.
				n.logf("netnode %s: digest false hit at %s for %s", n.id, p.HTTP, url)
				continue
			}
			res := Result{Outcome: metrics.RemoteHit, Size: size, Responder: p.HTTP}
			if n.scheme.OnRemoteHit(reqAge, respAge).StoreAtRequester {
				res.Stored = n.putIfFits(cache.Document{URL: url, Size: size})
			}
			return res, nil
		}
	} else if len(peers) > 0 {
		addrs := make([]*net.UDPAddr, len(peers))
		for i, p := range peers {
			addrs[i] = p.ICP
		}
		res, err := n.icpClient.Query(addrs, url, n.icpTimeout)
		if err != nil {
			n.logf("netnode %s: icp query: %v", n.id, err)
		} else if res.Hit {
			if hit, ok := n.fetchRemote(peers, res.Responder, url, sizeHint, reqAge); ok {
				return hit, nil
			}
			// The responder evicted it between reply and fetch; fall
			// through to the miss path.
		}
	}

	// 3. Group-wide miss: resolve through the parent when configured
	// (hierarchical architecture, §3.3), otherwise straight from the
	// origin.
	if n.parentAddr != "" {
		size, parentAge, source, err := fetchFrom(n.parentAddr, url, sizeHint, reqAge, true)
		if err != nil {
			return Result{}, fmt.Errorf("netnode %s: parent resolve: %w", n.id, err)
		}
		res := Result{Outcome: metrics.Miss, Size: size}
		if source == hproto.SourceCache {
			// Some cache up the hierarchy held it: a group hit.
			res.Outcome = metrics.RemoteHit
			res.Responder = n.parentAddr
			if n.scheme.OnRemoteHit(reqAge, parentAge).StoreAtRequester {
				res.Stored = n.putIfFits(cache.Document{URL: url, Size: size})
			}
			return res, nil
		}
		if n.scheme.OnMissViaParent(reqAge, parentAge) {
			res.Stored = n.putIfFits(cache.Document{URL: url, Size: size})
		}
		return res, nil
	}

	if n.originAddr == "" {
		return Result{}, fmt.Errorf("netnode %s: miss for %s and no origin", n.id, url)
	}
	size, _, _, err := fetchFrom(n.originAddr, url, sizeHint, reqAge, false)
	if err != nil {
		return Result{}, fmt.Errorf("netnode %s: origin fetch: %w", n.id, err)
	}
	res := Result{Outcome: metrics.Miss, Size: size}
	if n.scheme.OnOriginFetch(reqAge) {
		res.Stored = n.putIfFits(cache.Document{URL: url, Size: size})
	}
	return res, nil
}

// fetchRemote transfers the document from the ICP responder and applies the
// requester-side placement rule.
func (n *Node) fetchRemote(peers []Peer, responder *net.UDPAddr, url string, sizeHint int64, reqAge time.Duration) (Result, bool) {
	httpAddr := ""
	for _, p := range peers {
		if p.ICP.IP.Equal(responder.IP) && p.ICP.Port == responder.Port {
			httpAddr = p.HTTP
			break
		}
	}
	if httpAddr == "" {
		n.logf("netnode %s: ICP hit from unknown peer %s", n.id, responder)
		return Result{}, false
	}
	size, respAge, _, err := fetchFrom(httpAddr, url, sizeHint, reqAge, false)
	if err != nil {
		n.logf("netnode %s: remote fetch from %s: %v", n.id, httpAddr, err)
		return Result{}, false
	}
	res := Result{Outcome: metrics.RemoteHit, Size: size, Responder: httpAddr}
	if n.scheme.OnRemoteHit(reqAge, respAge).StoreAtRequester {
		res.Stored = n.putIfFits(cache.Document{URL: url, Size: size})
	}
	return res, true
}

func (n *Node) putIfFits(doc cache.Document) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, err := n.store.Put(doc, time.Now())
	return err == nil
}

// handleICP answers neighbours' queries against the local cache without
// touching replacement state.
func (n *Node) handleICP(url string) icp.Opcode {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.store.Contains(url) {
		return icp.OpHit
	}
	return icp.OpMiss
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.httpLn.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			n.logf("netnode %s: accept: %v", n.id, err)
			continue
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

// serveConn is the responder side of the inter-proxy fetch: serve the
// document with this node's expiration age piggybacked on the response,
// applying the responder-side placement rule against the age piggybacked
// on the request. A request flagged Resolve makes this node act as a
// hierarchical parent: on a local miss it fetches the document from its
// own upstream, keeps a copy only if the §3.3 parent rule says so, and
// reports whether the body came from a cache or the origin.
func (n *Node) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))

	req, err := hproto.ReadRequest(bufio.NewReader(conn))
	if err != nil {
		n.logf("netnode %s: bad fetch request: %v", n.id, err)
		return
	}

	// The reserved digest URL serves this node's own cache digest.
	if req.URL == DigestURL {
		n.serveDigest(conn)
		return
	}

	n.mu.Lock()
	respAge := n.store.ExpirationAge(time.Now())
	doc, ok := n.store.Peek(req.URL)
	if ok && n.scheme.OnRemoteHit(req.RequesterAge, respAge).PromoteAtResponder {
		n.store.Touch(req.URL, time.Now())
	}
	n.mu.Unlock()

	switch {
	case ok:
		err = hproto.WriteResponse(conn, hproto.Response{
			Status:        hproto.StatusOK,
			ResponderAge:  respAge,
			ContentLength: doc.Size,
			Source:        hproto.SourceCache,
		}, zeroReader(doc.Size))
	case req.Resolve:
		err = n.resolveAndServe(conn, req, respAge)
	default:
		err = hproto.WriteResponse(conn, hproto.Response{
			Status:       hproto.StatusNotFound,
			ResponderAge: respAge,
		}, nil)
	}
	if err != nil {
		n.logf("netnode %s: write fetch response: %v", n.id, err)
	}
}

// resolveAndServe is the parent's miss path: fetch the document from this
// node's own parent (recursively, preserving the source tag) or origin,
// store a copy iff this node's expiration age strictly exceeds the child's
// (core.Scheme.OnParentResolve), and relay the body.
func (n *Node) resolveAndServe(conn net.Conn, req hproto.Request, myAge time.Duration) error {
	var (
		size   int64
		source string
		err    error
	)
	switch {
	case n.parentAddr != "":
		size, _, source, err = fetchFrom(n.parentAddr, req.URL, req.SizeHint, myAge, true)
	case n.originAddr != "":
		size, _, _, err = fetchFrom(n.originAddr, req.URL, req.SizeHint, myAge, false)
		source = hproto.SourceOrigin
	default:
		return hproto.WriteResponse(conn, hproto.Response{
			Status:       hproto.StatusNotFound,
			ResponderAge: myAge,
		}, nil)
	}
	if err != nil {
		n.logf("netnode %s: resolve %s: %v", n.id, req.URL, err)
		return hproto.WriteResponse(conn, hproto.Response{
			Status:       hproto.StatusNotFound,
			ResponderAge: myAge,
		}, nil)
	}
	if n.scheme.OnParentResolve(myAge, req.RequesterAge) {
		n.putIfFits(cache.Document{URL: req.URL, Size: size})
	}
	return hproto.WriteResponse(conn, hproto.Response{
		Status:        hproto.StatusOK,
		ResponderAge:  myAge,
		ContentLength: size,
		Source:        source,
	}, zeroReader(size))
}

func (n *Node) logf(format string, args ...any) {
	if n.logger != nil {
		n.logger.Printf(format, args...)
	}
}

// fetchFrom performs one hproto GET against addr, discarding the body and
// returning its length, the piggybacked responder age, and the body's
// source (cache or origin; an absent header means cache).
func fetchFrom(addr, url string, sizeHint int64, requesterAge time.Duration, resolve bool) (int64, time.Duration, string, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return 0, 0, "", fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))

	if err := hproto.WriteRequest(conn, hproto.Request{
		URL:          url,
		RequesterAge: requesterAge,
		SizeHint:     sizeHint,
		Resolve:      resolve,
	}); err != nil {
		return 0, 0, "", err
	}
	br := bufio.NewReader(conn)
	resp, err := hproto.ReadResponse(br)
	if err != nil {
		return 0, 0, "", err
	}
	if resp.Status != hproto.StatusOK {
		return 0, resp.ResponderAge, "", fmt.Errorf("fetch %s from %s: status %d", url, addr, resp.Status)
	}
	if _, err := io.CopyN(io.Discard, br, resp.ContentLength); err != nil {
		return 0, resp.ResponderAge, "", fmt.Errorf("read body: %w", err)
	}
	source := resp.Source
	if source == "" {
		source = hproto.SourceCache
	}
	return resp.ContentLength, resp.ResponderAge, source, nil
}

// zeroReader streams n zero bytes; cached bodies are synthetic in this
// reproduction (the simulator tracks sizes, not payloads).
func zeroReader(n int64) io.Reader {
	return io.LimitReader(zeros{}, n)
}

type zeros struct{}

func (zeros) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

var _ io.Reader = zeros{}

// OriginServer is an hproto origin that serves any URL with a body of the
// hinted size (or 4KB), standing in for the web servers behind the group.
type OriginServer struct {
	ln     net.Listener
	logger *log.Logger
	wg     sync.WaitGroup
	closed chan struct{}

	mu      sync.Mutex
	fetches int64
}

// NewOriginServer starts an origin on addr ("127.0.0.1:0" for tests).
func NewOriginServer(addr string, logger *log.Logger) (*OriginServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netnode: origin listen %q: %w", addr, err)
	}
	o := &OriginServer{ln: ln, logger: logger, closed: make(chan struct{})}
	o.wg.Add(1)
	go o.acceptLoop()
	return o, nil
}

// Addr returns the origin's TCP address.
func (o *OriginServer) Addr() string { return o.ln.Addr().String() }

// Fetches returns how many documents the origin served — the traffic the
// cache group failed to absorb.
func (o *OriginServer) Fetches() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fetches
}

// Close stops the origin.
func (o *OriginServer) Close() error {
	select {
	case <-o.closed:
		return nil
	default:
	}
	close(o.closed)
	err := o.ln.Close()
	o.wg.Wait()
	return err
}

func (o *OriginServer) acceptLoop() {
	defer o.wg.Done()
	for {
		conn, err := o.ln.Accept()
		if err != nil {
			select {
			case <-o.closed:
				return
			default:
			}
			if o.logger != nil {
				o.logger.Printf("origin: accept: %v", err)
			}
			continue
		}
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			o.serveConn(conn)
		}()
	}
}

func (o *OriginServer) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	req, err := hproto.ReadRequest(bufio.NewReader(conn))
	if err != nil {
		return
	}
	size := req.SizeHint
	if size <= 0 {
		size = 4096
	}
	o.mu.Lock()
	o.fetches++
	o.mu.Unlock()
	_ = hproto.WriteResponse(conn, hproto.Response{
		Status:        hproto.StatusOK,
		ResponderAge:  cache.NoContention, // origins have no cache contention
		ContentLength: size,
		Source:        hproto.SourceOrigin,
	}, zeroReader(size))
}

// serveDigest answers a peer's digest fetch with this node's serialized
// summary, or 404 when the node does not run digests.
func (n *Node) serveDigest(conn net.Conn) {
	n.mu.Lock()
	var (
		data []byte
		err  error
	)
	if n.digests != nil {
		data, err = n.ownDigestBytes()
	}
	n.mu.Unlock()
	if n.digests == nil || err != nil {
		if err != nil {
			n.logf("netnode %s: marshal digest: %v", n.id, err)
		}
		_ = hproto.WriteResponse(conn, hproto.Response{Status: hproto.StatusNotFound}, nil)
		return
	}
	if err := hproto.WriteResponse(conn, hproto.Response{
		Status:        hproto.StatusOK,
		ContentLength: int64(len(data)),
	}, bytes.NewReader(data)); err != nil {
		n.logf("netnode %s: write digest: %v", n.id, err)
	}
}
