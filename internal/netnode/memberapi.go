package netnode

// The membership admin API, mounted on the obs admin surface
// (obs.AdminConfig.Routes) so operators drive joins, leaves, and drains
// on the same management port they scrape:
//
//	GET  /admin/peers        membership table, epoch, drain state
//	GET  /admin/resident     resident document URLs (replication audit)
//	GET  /admin/digests      digest generations, freshness, transfer stats
//	POST /admin/peers/join   {"icp","http","name","admin"} — admit a member
//	POST /admin/peers/leave  {"peer"} — remove by ring name or fetch addr
//	POST /admin/peers/drain  hand off this node's copies; returns report

import (
	"encoding/json"
	"net"
	"net/http"
)

// AdminRoutes returns the node's membership admin handlers keyed by
// pattern, for mounting on an http.ServeMux.
func (n *Node) AdminRoutes() map[string]http.Handler {
	return map[string]http.Handler{
		"/admin/peers":       http.HandlerFunc(n.handlePeers),
		"/admin/resident":    http.HandlerFunc(n.handleResident),
		"/admin/digests":     http.HandlerFunc(n.handleDigests),
		"/admin/peers/join":  http.HandlerFunc(n.handleJoin),
		"/admin/peers/leave": http.HandlerFunc(n.handleLeave),
		"/admin/peers/drain": http.HandlerFunc(n.handleDrain),
	}
}

// membershipView is the GET /admin/peers body (also returned by join and
// leave, so the caller sees the topology its change produced).
type membershipView struct {
	Self     string         `json:"self"`
	Epoch    int64          `json:"epoch"`
	Draining bool           `json:"draining"`
	Members  []MemberStatus `json:"members"`
}

func (n *Node) currentView() membershipView {
	return membershipView{
		Self:     n.hashName,
		Epoch:    n.Epoch(),
		Draining: n.Draining(),
		Members:  n.Members(),
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeAdminErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (n *Node) handlePeers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, n.currentView())
}

func (n *Node) handleDigests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, n.DigestReport())
}

func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var body struct {
		ICP   string `json:"icp"`
		HTTP  string `json:"http"`
		Name  string `json:"name"`
		Admin string `json:"admin"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeAdminErr(w, http.StatusBadRequest, err)
		return
	}
	udp, err := net.ResolveUDPAddr("udp", body.ICP)
	if err != nil {
		writeAdminErr(w, http.StatusBadRequest, err)
		return
	}
	if err := n.AddPeer(Peer{ICP: udp, HTTP: body.HTTP, Name: body.Name, Admin: body.Admin}); err != nil {
		writeAdminErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, n.currentView())
}

func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var body struct {
		Peer string `json:"peer"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeAdminErr(w, http.StatusBadRequest, err)
		return
	}
	if err := n.RemovePeer(body.Peer); err != nil {
		writeAdminErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, n.currentView())
}

// handleResident lists the URLs this node currently caches — the raw
// input for the group replication-factor audit (eacctl intersects every
// member's list to count copies per document). The list is a snapshot,
// not a consistent cut; it is meant for auditing placement behaviour,
// not for routing.
func (n *Node) handleResident(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	urls := n.store.URLs()
	writeJSON(w, http.StatusOK, struct {
		Node      string   `json:"node"`
		Documents int      `json:"documents"`
		URLs      []string `json:"urls"`
	}{Node: n.id, Documents: len(urls), URLs: urls})
}

func (n *Node) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, n.DrainHandoff())
}
