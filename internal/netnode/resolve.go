package netnode

// This file adapts the live node to the shared resolution engine
// (internal/resolve): the engine owns the request lifecycle and every
// placement decision; the adapters below supply the node's sharded
// store, the hproto/ICP transport with its health bookkeeping, the
// locator strategies, and the telemetry/robustness hooks. The node
// keeps ownership of sockets, persistence, observability, and health —
// the engine never sees any of them directly. The request context
// threaded through the engine (rctx) is the request's *obs.Trace; every
// trace entry point is nil-safe, so telemetry-off nodes pay nothing.

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"eacache/internal/cache"
	"eacache/internal/chash"
	"eacache/internal/hproto"
	"eacache/internal/obs"
	"eacache/internal/resolve"
)

// traceOf unboxes the request context. A *obs.Trace boxed into an any
// does not allocate (pointer types box for free), so threading it
// through the engine keeps the hot path allocation-neutral.
func traceOf(rctx any) *obs.Trace {
	tr, _ := rctx.(*obs.Trace)
	return tr
}

// hopOf is the trace's forwarding depth for ICP stamping: 0 at the
// front door, deeper on remote-parented requests, -1 (unstamped) when
// the request is untraced.
func hopOf(tr *obs.Trace) int {
	if tr == nil {
		return -1
	}
	return tr.Hop
}

// nodeStore is the engine's view of the node's cache.
type nodeStore struct{ n *Node }

var _ resolve.LocalStore = nodeStore{}

func (s nodeStore) Lookup(rctx any, url string, now time.Time) (cache.Document, bool) {
	n := s.n
	tr := traceOf(rctx)
	lookup := n.startStage(tr, stLocalLookup)
	doc, ok := n.store.Get(url, now)
	n.endStage(tr, lookup)
	return doc, ok
}

func (s nodeStore) ExpirationAge(now time.Time) time.Duration {
	return s.n.store.ExpirationAge(now)
}

func (s nodeStore) StoreCopy(doc cache.Document, now time.Time) bool {
	if s.n.draining.Load() || s.n.warming() {
		// A draining node keeps no new copies (its store must only
		// shrink while the handoff walks it), and a warming one relays
		// without storing until the group has converged on its arrival
		// — storing earlier could duplicate a copy a stale-view peer
		// still holds. Migration pushes bypass this path.
		return false
	}
	_, err := s.n.store.Put(doc, now)
	return err == nil
}

// nodeLocator dispatches to the node's configured location mechanism.
// Candidates carry only the peer's fetch (TCP) address as their ID —
// no boxed structs, so locating allocates nothing beyond the slice.
type nodeLocator struct{ n *Node }

var _ resolve.Locator = nodeLocator{}

// Locate implements resolve.Locator.
func (l nodeLocator) Locate(rctx any, url string, now time.Time) resolve.Located {
	n := l.n
	switch n.location {
	case resolve.LocateDigest:
		return n.digestLocate(traceOf(rctx), url)
	case resolve.LocateHash:
		h := n.hash.Load()
		if h == nil {
			// Unwired singleton: home for everything.
			return resolve.Located{Placement: resolve.PlacementAlways}
		}
		return h.Locate(rctx, url, now)
	default: // LocateICP
		return n.icpLocate(traceOf(rctx), url)
	}
}

// icpLocate runs the health-gated ICP fan-out and returns the hit
// responders mapped to their fetch addresses, ordered by their position
// in the peer list rather than by reply arrival. Peer-list order is a
// stable preference: on a LAN group the latency spread between
// responders is noise, and a deterministic choice is what lets the
// sim↔live parity gate (internal/parity) demand identical placement
// decisions from both stacks — the simulator's synchronous ICP picks
// the first sibling in wiring order.
func (n *Node) icpLocate(tr *obs.Trace, url string) resolve.Located {
	// The peer snapshot is immutable, so when every breaker is closed
	// (the steady state) it is fanned out as-is, copy-free; only a
	// degraded group pays for the filtered slice.
	peers := n.peerList()
	active := peers
	for i, p := range peers {
		if !n.health.Allow(p.HTTP) {
			active = make([]Peer, i, len(peers))
			copy(active, peers[:i])
			for _, q := range peers[i+1:] {
				if n.health.Allow(q.HTTP) {
					active = append(active, q)
				}
			}
			break
		}
	}
	if len(active) == 0 {
		return resolve.Located{}
	}
	addrs := make([]*net.UDPAddr, len(active))
	for i, p := range active {
		addrs[i] = p.ICP
	}
	fanout := n.startStage(tr, stICPFanout)
	res, err := n.icpClient.QueryHop(addrs, url, n.icpTimeout, hopOf(tr))
	if err != nil {
		tr.SpanErr(err)
		n.endStage(tr, fanout)
		n.warn("icp query failed", tr, "err", err)
		return resolve.Located{}
	}
	tr.Annotate("queried", strconv.Itoa(len(active)))
	tr.Annotate("replies", strconv.Itoa(len(res.Answered)))
	tr.Annotate("hits", strconv.Itoa(len(res.Responders)))
	if res.TimedOut {
		tr.Annotate("timed_out", "true")
	}
	n.endStage(tr, fanout)
	n.recordFanout(active, res)

	known := 0
	var cands []resolve.Candidate
	for _, p := range active {
		for _, responder := range res.Responders {
			if udpAddrEqual(p.ICP, responder) {
				known++
				cands = append(cands, resolve.Candidate{ID: p.HTTP})
				break
			}
		}
	}
	if known < len(res.Responders) {
		n.warn("icp hits from unknown peers", tr, "hits", len(res.Responders), "known", known)
	}
	return resolve.Located{Candidates: cands}
}

// udpAddrEqual compares reply source addresses to peer-list addresses
// without allocating (IP.Equal matches IPv4 against its v6-mapped form,
// which is how loopback replies often arrive).
func udpAddrEqual(a, b *net.UDPAddr) bool {
	return a.Port == b.Port && a.Zone == b.Zone && a.IP.Equal(b.IP)
}

// digestLocate consults the (health-gated) fetched peer digests.
func (n *Node) digestLocate(tr *obs.Trace, url string) resolve.Located {
	scan := n.startStage(tr, stDigestScan)
	candidates := n.digestCandidates(n.peerList(), url)
	tr.Annotate("candidates", strconv.Itoa(len(candidates)))
	n.endStage(tr, scan)
	var cands []resolve.Candidate
	for _, p := range candidates {
		cands = append(cands, resolve.Candidate{ID: p.HTTP})
	}
	return resolve.Located{Candidates: cands}
}

// rebuildHashRing publishes a new hash locator over the node's own ring
// name plus the active peer set, stamped with the membership epoch that
// produced it. Called on every topology publish under LocateHash; the
// locator is immutable once published and swapped atomically, like the
// peer snapshot itself.
func (n *Node) rebuildHashRing(peers []Peer, epoch int64) {
	members := make([]string, 0, len(peers)+1)
	members = append(members, n.hashName)
	byName := make(map[string]Peer, len(peers))
	for _, p := range peers {
		name := ringName(p)
		members = append(members, name)
		byName[name] = p
	}
	ring, err := chash.New(0, members...)
	if err != nil {
		n.warn("hash ring rebuild failed", nil, "err", err)
		n.hash.Store(nil)
		return
	}
	n.hash.Store(&resolve.HashLocator{
		Ring:        ring,
		Self:        n.hashName,
		Epoch:       epoch,
		Fingerprint: ring.Fingerprint(),
		Candidate: func(member string) (resolve.Candidate, bool) {
			p, ok := byName[member]
			if !ok || !n.health.Allow(p.HTTP) {
				// Unknown name, or the breaker is open on the peer:
				// the locator walks on to the next owner in the chain.
				return resolve.Candidate{}, false
			}
			return resolve.Candidate{ID: p.HTTP}, true
		},
	})
}

// nodeTransport performs the engine's remote operations over hproto,
// feeding every attempt's evidence to the per-peer breaker.
type nodeTransport struct{ n *Node }

var _ resolve.Transport = nodeTransport{}

// FetchRemote implements resolve.Transport.
func (t nodeTransport) FetchRemote(rctx any, c resolve.Candidate, url string, sizeHint int64, reqAge time.Duration, rslv bool, _ time.Time) (resolve.Remote, resolve.FetchStatus) {
	n := t.n
	tr := traceOf(rctx)
	fetch := n.startStage(tr, stRemoteFetch)
	tr.Annotate("responder", c.ID)
	size, respAge, source, err := n.fetchFrom(tr, c.ID, url, sizeHint, reqAge, rslv)
	tr.SpanErr(err)
	n.endStage(tr, fetch)
	switch {
	case errors.Is(err, errNotFound):
		// The responder answered but no longer holds (and could not
		// resolve) the document — an eviction race or a stale digest,
		// never the peer's fault.
		n.health.ReportSuccess(c.ID)
		return resolve.Remote{ResponderAge: respAge}, resolve.FetchNotFound
	case err != nil:
		n.warn("remote fetch failed", tr, "peer", c.ID, "err", err)
		n.health.ReportFailure(c.ID)
		n.robust.PeerFailure()
		return resolve.Remote{}, resolve.FetchFailed
	}
	n.health.ReportSuccess(c.ID)
	return resolve.Remote{
		Doc:          cache.Document{URL: url, Size: size},
		ResponderAge: respAge,
		FromGroup:    source == hproto.SourceCache,
	}, resolve.FetchOK
}

func (t nodeTransport) ParentID() (string, bool) {
	return t.n.parentAddr, t.n.parentAddr != ""
}

func (t nodeTransport) FetchParent(rctx any, url string, sizeHint int64, reqAge time.Duration, _ time.Time) (resolve.Remote, error) {
	n := t.n
	tr := traceOf(rctx)
	parent := n.startStage(tr, stParentFetch)
	tr.Annotate("parent", n.parentAddr)
	size, parentAge, source, err := n.fetchUpstream(tr, n.parentAddr, url, sizeHint, reqAge, true)
	tr.SpanErr(err)
	n.endStage(tr, parent)
	if err != nil {
		return resolve.Remote{}, fmt.Errorf("netnode %s: parent resolve: %w", n.id, err)
	}
	return resolve.Remote{
		Doc:          cache.Document{URL: url, Size: size},
		ResponderAge: parentAge,
		FromGroup:    source == hproto.SourceCache,
	}, nil
}

func (t nodeTransport) HasOrigin() bool { return t.n.originAddr != "" }

func (t nodeTransport) FetchOrigin(rctx any, url string, sizeHint int64, reqAge time.Duration, _ time.Time) (cache.Document, error) {
	n := t.n
	tr := traceOf(rctx)
	origin := n.startStage(tr, stOriginFetch)
	size, _, _, err := n.fetchUpstream(tr, n.originAddr, url, sizeHint, reqAge, false)
	tr.SpanErr(err)
	n.endStage(tr, origin)
	if err != nil {
		return cache.Document{}, fmt.Errorf("netnode %s: origin fetch: %w", n.id, err)
	}
	return cache.Document{URL: url, Size: size}, nil
}

// nodeHooks maps the engine's decision points to telemetry spans and
// robustness counters. Placement spans record the scheme's verdict (the
// decision), not whether the copy physically fit — matching the
// pre-engine node.
type nodeHooks struct{ n *Node }

var _ resolve.Hooks = nodeHooks{}

// OnLocalHit: the outcome counter is recorded by observeRequest; no
// extra span.
func (h nodeHooks) OnLocalHit(any, string, time.Time) {}

func (h nodeHooks) OnRetry(any) { h.n.robust.Retry() }

func (h nodeHooks) OnFalseHit(rctx any, c resolve.Candidate, url string) {
	if h.n.location == resolve.LocateDigest {
		// Only a stale or colliding digest advertises a document the
		// peer does not have; under ICP a not-found is an eviction race
		// and not worth a log line.
		h.n.warn("digest false hit", traceOf(rctx), "peer", c.ID, "url", url)
	}
}

func (h nodeHooks) OnRemoteHit(rctx any, _ resolve.Candidate, url string, size int64, reqAge, respAge time.Duration, store, _, _ bool, _ time.Time) {
	h.n.placementSpan(traceOf(rctx), roleRequester, url, size, reqAge, respAge, decisionOf(store))
}

func (h nodeHooks) OnFallback(any) { h.n.robust.Fallback() }

func (h nodeHooks) OnParentDegrade(rctx any, url string, err error) {
	h.n.warn("parent resolve failed, degrading to origin", traceOf(rctx), "url", url, "err", err)
	h.n.robust.Fallback()
}

func (h nodeHooks) OnParentFetch(rctx any, _, url string, size int64, reqAge, parentAge time.Duration, _, store, _ bool, _ time.Time) {
	h.n.placementSpan(traceOf(rctx), roleRequester, url, size, reqAge, parentAge, decisionOf(store))
}

func (h nodeHooks) OnOriginFetch(rctx any, url string, size int64, reqAge time.Duration, store, _ bool, _ time.Time) {
	h.n.placementSpan(traceOf(rctx), roleRequester, url, size, reqAge, cache.NoContention, decisionOf(store))
}
