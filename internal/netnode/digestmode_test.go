package netnode

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"eacache/internal/core"
	"eacache/internal/digest"
	"eacache/internal/metrics"
	"eacache/internal/proxy"
)

// startDigestNode builds a node that locates documents via peer digests.
func startDigestNode(t *testing.T, id string, capacity int64, origin string) *Node {
	t.Helper()
	n, err := New(Config{
		ID:            id,
		ICPAddr:       "127.0.0.1:0",
		HTTPAddr:      "127.0.0.1:0",
		Store:         newStore(t, capacity),
		Scheme:        core.EA{},
		OriginAddr:    origin,
		Location:      proxy.LocateDigest,
		Digest:        proxy.DigestConfig{Expected: 64, FPRate: 0.01, RebuildEvery: 1},
		DigestRefresh: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestFilterBinaryRoundTrip(t *testing.T) {
	f, err := digest.NewFilter(500, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		f.Add(fmt.Sprintf("http://w/doc%d", i))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g digest.Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.Hashes() != f.Hashes() || g.Len() != f.Len() {
		t.Fatalf("geometry changed: %d/%d/%d vs %d/%d/%d",
			g.Bits(), g.Hashes(), g.Len(), f.Bits(), f.Hashes(), f.Len())
	}
	for i := 0; i < 300; i++ {
		if !g.MayContain(fmt.Sprintf("http://w/doc%d", i)) {
			t.Fatalf("decoded filter lost doc%d", i)
		}
	}
}

func TestFilterUnmarshalRejectsGarbage(t *testing.T) {
	var f digest.Filter
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXX\x01\x07\x00\x00\x00\x00\x00\x00\x00\x00\x00\x40\x00\x00\x00\x00\x00\x00\x00\x00"),
	}
	for _, data := range cases {
		if err := f.UnmarshalBinary(data); err == nil {
			t.Fatalf("garbage accepted: %q", data)
		}
	}
	// Valid header with mismatched body length.
	good, err := digest.NewFilter(64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	data, err := good.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.UnmarshalBinary(data[:len(data)-8]); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestDigestRemoteHitOverWire(t *testing.T) {
	origin := startOrigin(t)
	a := startDigestNode(t, "a", 1<<20, origin.Addr())
	b := startDigestNode(t, "b", 1<<20, origin.Addr())
	mesh(a, b)

	if _, err := a.Request("http://w/x", 1000); err != nil {
		t.Fatal(err)
	}
	res, err := b.Request("http://w/x", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit || res.Responder != a.HTTPAddr() {
		t.Fatalf("res = %+v, want remote hit via digest", res)
	}
	if origin.Fetches() != 1 {
		t.Fatalf("origin fetches = %d", origin.Fetches())
	}
}

func TestDigestStalePeerCopyFallsThroughToOrigin(t *testing.T) {
	origin := startOrigin(t)
	a := startDigestNode(t, "a", 2100, origin.Addr()) // ~2 documents
	b := startDigestNode(t, "b", 1<<20, origin.Addr())
	mesh(a, b)

	// a caches x; b fetches a's digest (which advertises x).
	if _, err := a.Request("http://w/x", 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request("http://w/x", 1000); err != nil {
		t.Fatal(err)
	}
	// a evicts x under churn; b's cached digest is now stale.
	if _, err := a.Request("http://w/y", 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request("http://w/z", 1000); err != nil {
		t.Fatal(err)
	}
	if a.Contains("http://w/x") {
		t.Skip("x still resident; eviction pattern changed")
	}
	// b itself never stored x (cold EA tie), so this request must ride
	// the stale digest, get a false hit, and fall through to the origin.
	before := origin.Fetches()
	res, err := b.Request("http://w/x", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss {
		t.Fatalf("res = %+v, want miss after stale digest", res)
	}
	if origin.Fetches() != before+1 {
		t.Fatalf("origin fetches = %d, want %d", origin.Fetches(), before+1)
	}
}

func TestDigestRefreshPicksUpNewContent(t *testing.T) {
	origin := startOrigin(t)
	a := startDigestNode(t, "a", 1<<20, origin.Addr())
	b := startDigestNode(t, "b", 1<<20, origin.Addr())
	mesh(a, b)

	// Prime b's cached digest of a (empty at this point).
	if _, err := b.Request("http://w/seed", 500); err != nil {
		t.Fatal(err)
	}
	// a caches fresh content.
	if _, err := a.Request("http://w/new", 500); err != nil {
		t.Fatal(err)
	}
	// After the refresh window, b re-fetches a's digest and finds it.
	time.Sleep(80 * time.Millisecond)
	res, err := b.Request("http://w/new", 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit {
		t.Fatalf("res = %+v, want remote hit after digest refresh", res)
	}
}

func TestICPNodeServes404ForDigestURL(t *testing.T) {
	origin := startOrigin(t)
	icpNode := startNode(t, "plain", 1<<20, core.EA{}, origin.Addr())
	if _, err := icpNode.fetchDigest(icpNode.HTTPAddr()); err == nil {
		t.Fatal("non-digest node served a digest")
	}
}

func TestDigestConfigDefaultsAndNodeID(t *testing.T) {
	dc := proxy.DigestConfig{}.WithDefaults(1 << 20)
	if dc.Expected != 256 || dc.FPRate != 0.01 || dc.RebuildEvery != 5 {
		t.Fatalf("defaults = %+v", dc)
	}
	tiny := proxy.DigestConfig{}.WithDefaults(100)
	if tiny.Expected != 16 || tiny.RebuildEvery != 1 {
		t.Fatalf("tiny defaults = %+v", tiny)
	}

	origin := startOrigin(t)
	n := startDigestNode(t, "named", 1<<20, origin.Addr())
	if n.ID() != "named" {
		t.Fatalf("ID = %q", n.ID())
	}
}

func TestNewDigestStateDefaultsRefresh(t *testing.T) {
	ds, err := newDigestState(proxy.DigestConfig{}, 1<<20, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.refresh != DefaultDigestRefresh {
		t.Fatalf("refresh = %v", ds.refresh)
	}
	if _, err := newDigestState(proxy.DigestConfig{Expected: 10, FPRate: 2, RebuildEvery: 1}, 0, 0, 0); err == nil {
		t.Fatal("invalid digest config accepted")
	}
}

func TestFetchFromErrors(t *testing.T) {
	origin := startOrigin(t)
	node := startNode(t, "n", 1<<20, core.EA{}, origin.Addr())
	// Unreachable address.
	if _, _, _, err := node.fetchFrom(nil, "127.0.0.1:1", "http://x/", 10, 0, false); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	// A responder that 404s maps to errNotFound (a miss, not a fault).
	_, _, _, err := node.fetchFrom(nil, node.HTTPAddr(), "http://absent/", 10, 0, false)
	if err == nil {
		t.Fatal("404 fetch reported success")
	}
	if !errors.Is(err, errNotFound) {
		t.Fatalf("404 fetch error = %v, want errNotFound", err)
	}
}
