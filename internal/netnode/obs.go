package netnode

import (
	"math"
	"time"

	"eacache/internal/cache"
	"eacache/internal/health"
	"eacache/internal/metrics"
	"eacache/internal/obs"
)

// Stage indexes for the request lifecycle. The hot path indexes plain
// arrays with these instead of hashing stage-name strings: the request
// path runs with cold caches, where a map lookup costs several times an
// array index.
const (
	stLocalLookup = iota
	stICPFanout
	stDigestScan
	stRemoteFetch
	stParentFetch
	stOriginFetch
	stageCount
)

var stageNames = [stageCount]string{
	obs.StageLocalLookup, obs.StageICPFanout, obs.StageDigestScan,
	obs.StageRemoteFetch, obs.StageParentFetch, obs.StageOriginFetch,
}

// Placement-decision roles on the eac_placement_decisions_total counter:
// the requester-side store rule, the responder-side promote rule, and the
// parent's §3.3 keep-a-copy rule.
const (
	roleRequester = iota
	roleResponder
	roleParent
	roleCount
)

var roleNames = [roleCount]string{"requester", "responder", "parent"}

// Decision indexes matching the obs.Decision* labels.
const (
	decisionAccept = iota
	decisionReject
	decisionPromote
	decisionCount
)

var decisionNames = [decisionCount]string{
	obs.DecisionAccept, obs.DecisionReject, obs.DecisionPromote,
}

// Request-outcome indexes: the three metrics.Outcome values (shifted to
// zero base) plus a terminal-error bucket.
const (
	ocLocalHit = iota
	ocRemoteHit
	ocMiss
	ocError
	outcomeCount
)

// outcomeError is the label for requests that ended in a terminal error.
const outcomeError = "error"

var outcomeNames = [outcomeCount]string{
	metrics.LocalHit.String(), metrics.RemoteHit.String(),
	metrics.Miss.String(), outcomeError,
}

func outcomeIndex(res Result, err error) int {
	if err != nil {
		return ocError
	}
	if idx := int(res.Outcome) - 1; idx >= ocLocalHit && idx <= ocMiss {
		return idx
	}
	return ocError
}

// decisionOf maps a placement scheme's store verdict to the decision index.
func decisionOf(store bool) int {
	if store {
		return decisionAccept
	}
	return decisionReject
}

// nodeObs caches the node's instruments in flat arrays so the request
// path records with array indexes and plain atomic adds — no registry
// lock, no map hashing. A nil *nodeObs is inert: every method starts with
// a nil check, so a node built without telemetry pays one pointer test
// per call site.
type nodeObs struct {
	tel *obs.Telemetry

	requests [outcomeCount]*obs.Counter   // eac_requests_total{outcome}
	bytes    [outcomeCount]*obs.Counter   // eac_bytes_served_total{outcome}
	reqDur   [outcomeCount]*obs.Histogram // eac_request_duration_seconds{outcome}
	stageDur [stageCount]*obs.Histogram   // eac_stage_duration_seconds{stage}
	// decisions holds only the meaningful (role, decision) pairs; the
	// rest stay nil and are skipped.
	decisions [roleCount][decisionCount]*obs.Counter

	icpReplies *obs.Counter
	icpSilent  *obs.Counter
	icpSendErr *obs.Counter

	events []*obs.Counter // indexed by cache.EventKind

	checkpoints   *obs.Counter
	checkpointErr *obs.Counter
	checkpointDur *obs.Histogram

	coalescedFollowers *obs.Counter   // eac_coalesced_followers_total
	leaderInitial      *obs.Counter   // eac_coalesce_leader_elections_total{kind="initial"}
	leaderRetry        *obs.Counter   // eac_coalesce_leader_elections_total{kind="retry"}
	sheds              *obs.Counter   // eac_requests_shed_total
	upstreamWaits      *obs.Counter   // eac_origin_sem_waits_total
	upstreamWaitDur    *obs.Histogram // eac_origin_sem_wait_seconds

	migrations  [mrCount]*obs.Counter  // eac_migration_docs_total{result}
	migrBytes   *obs.Counter           // eac_migration_bytes_total
	memEvents   [memCount]*obs.Counter // eac_membership_events_total{event}
	pushStored  *obs.Counter           // eac_pushes_received_total{decision="stored"}
	pushRefused *obs.Counter           // eac_pushes_received_total{decision="refused"}

	// Digest maintenance (digestmode.go): transfers indexed by
	// digestSyncFull/digestSyncDelta.
	digestServedN  [2]*obs.Counter // eac_digest_transfers_total{kind,dir="served"}
	digestAppliedN [2]*obs.Counter // eac_digest_transfers_total{kind,dir="applied"}
	digestBytesN   [2]*obs.Counter // eac_digest_bytes_total{kind}
	digestRebuilds *obs.Counter    // eac_digest_rebuild_escapes_total
	digestStale    *obs.Counter    // eac_digest_stale_served_total
	digestFetchErr *obs.Counter    // eac_digest_fetch_failures_total
}

// Membership event indexes on eac_membership_events_total.
const (
	memEjection = iota
	memReadmission
	memCount
)

var memEventNames = [memCount]string{"ejection", "readmission"}

// newNodeObs registers the node's metric families and returns the cached
// instruments. The gauge funcs close over n and are evaluated at scrape
// time, so the exposed values are always current.
func newNodeObs(n *Node, tel *obs.Telemetry) *nodeObs {
	if tel == nil {
		return nil
	}
	r := tel.Registry
	o := &nodeObs{tel: tel}

	for idx, oc := range outcomeNames {
		l := obs.Labels{"outcome": oc}
		o.requests[idx] = r.Counter("eac_requests_total",
			"Requests served, by final outcome.", l)
		o.bytes[idx] = r.Counter("eac_bytes_served_total",
			"Body bytes served to clients, by final outcome.", l)
		o.reqDur[idx] = r.Histogram("eac_request_duration_seconds",
			"End-to-end request latency, by final outcome.", l, nil)
	}
	for idx, st := range stageNames {
		o.stageDur[idx] = r.Histogram("eac_stage_duration_seconds",
			"Per-stage latency of the request lifecycle.",
			obs.Labels{"stage": st}, nil)
	}
	for _, rd := range [][2]int{
		{roleRequester, decisionAccept}, {roleRequester, decisionReject},
		{roleResponder, decisionPromote}, {roleResponder, decisionReject},
		{roleParent, decisionAccept}, {roleParent, decisionReject},
	} {
		o.decisions[rd[0]][rd[1]] = r.Counter("eac_placement_decisions_total",
			"EA placement decisions, by deciding role and outcome.",
			obs.Labels{"role": roleNames[rd[0]], "decision": decisionNames[rd[1]]})
	}

	o.icpReplies = r.Counter("eac_icp_replies_total",
		"ICP replies heard across all fan-outs.", nil)
	o.icpSilent = r.Counter("eac_icp_silent_peers_total",
		"Peers that stayed silent through a full ICP timeout.", nil)
	o.icpSendErr = r.Counter("eac_icp_send_failures_total",
		"ICP queries that could not be sent.", nil)

	kinds := []cache.EventKind{
		cache.EventInsert, cache.EventHit, cache.EventPromote,
		cache.EventEvict, cache.EventRemove,
		cache.EventDemote, cache.EventPromoteFromDisk,
	}
	max := 0
	for _, k := range kinds {
		if int(k) > max {
			max = int(k)
		}
	}
	o.events = make([]*obs.Counter, max+1)
	for _, k := range kinds {
		o.events[k] = r.Counter("eac_cache_events_total",
			"Cache mutations by kind (with persistence on, every event is one journal record).",
			obs.Labels{"kind": k.String()})
	}

	o.checkpoints = r.Counter("eac_checkpoints_total",
		"Completed snapshot+journal-rotation checkpoints.", nil)
	o.checkpointErr = r.Counter("eac_checkpoint_failures_total",
		"Checkpoints that failed.", nil)
	o.checkpointDur = r.Histogram("eac_checkpoint_duration_seconds",
		"Checkpoint (capture + rotate + snapshot write) duration.", nil, nil)

	o.coalescedFollowers = r.Counter("eac_coalesced_followers_total",
		"Requests served as single-flight followers of a concurrent miss for the same URL.", nil)
	o.leaderInitial = r.Counter("eac_coalesce_leader_elections_total",
		"Single-flight leader elections, by kind (initial epoch vs post-failure retry).",
		obs.Labels{"kind": "initial"})
	o.leaderRetry = r.Counter("eac_coalesce_leader_elections_total",
		"Single-flight leader elections, by kind (initial epoch vs post-failure retry).",
		obs.Labels{"kind": "retry"})
	o.sheds = r.Counter("eac_requests_shed_total",
		"Requests refused at the front door because the in-flight bound and queue-wait budget were exceeded.", nil)
	o.upstreamWaits = r.Counter("eac_origin_sem_waits_total",
		"Upstream fetches that found the origin-concurrency semaphore full and queued.", nil)
	o.upstreamWaitDur = r.Histogram("eac_origin_sem_wait_seconds",
		"Time contended upstream fetches waited for an origin-semaphore slot.", nil, nil)

	for idx, res := range migrateResultNames {
		o.migrations[idx] = r.Counter("eac_migration_docs_total",
			"Documents processed by migration passes, by per-document result.",
			obs.Labels{"result": res})
	}
	o.migrBytes = r.Counter("eac_migration_bytes_total",
		"Body bytes transferred by migration handoffs.", nil)
	for idx, ev := range memEventNames {
		o.memEvents[idx] = r.Counter("eac_membership_events_total",
			"Breaker-driven membership changes (grace-window ejections and probe readmissions).",
			obs.Labels{"event": ev})
	}
	o.pushStored = r.Counter("eac_pushes_received_total",
		"Migration handoffs received, by whether the copy was stored.",
		obs.Labels{"decision": "stored"})
	o.pushRefused = r.Counter("eac_pushes_received_total",
		"Migration handoffs received, by whether the copy was stored.",
		obs.Labels{"decision": "refused"})

	for idx, kind := range [2]string{digestSyncFull: "full", digestSyncDelta: "delta"} {
		o.digestServedN[idx] = r.Counter("eac_digest_transfers_total",
			"Digest transfers, by kind (full filter vs generation delta) and direction.",
			obs.Labels{"kind": kind, "dir": "served"})
		o.digestAppliedN[idx] = r.Counter("eac_digest_transfers_total",
			"Digest transfers, by kind (full filter vs generation delta) and direction.",
			obs.Labels{"kind": kind, "dir": "applied"})
		o.digestBytesN[idx] = r.Counter("eac_digest_bytes_total",
			"Digest body bytes served, by transfer kind.",
			obs.Labels{"kind": kind})
	}
	o.digestRebuilds = r.Counter("eac_digest_rebuild_escapes_total",
		"Full-URL-scan digest rebuilds via the counter-saturation escape hatch (steady state: 0).", nil)
	o.digestStale = r.Counter("eac_digest_stale_served_total",
		"Lookups answered from a stale peer digest while a background refresh was in flight.", nil)
	o.digestFetchErr = r.Counter("eac_digest_fetch_failures_total",
		"Peer digest fetches that dialled but failed.", nil)
	r.GaugeFunc("eac_digest_generation",
		"Generation of this node's own advertised digest (0 when digests are off).",
		nil, func() float64 {
			if n.digests == nil {
				return 0
			}
			n.digestMu.Lock()
			g := n.digests.own.Generation()
			n.digestMu.Unlock()
			return float64(g)
		})

	r.GaugeFunc("eac_membership_epoch",
		"Membership revision: bumped by every join, leave, ejection, and readmission.",
		nil, func() float64 { return float64(n.epoch.Load()) })
	r.GaugeFunc("eac_membership_active_peers",
		"Peers currently in the locator set (configured members minus ejected ones).",
		nil, func() float64 { return float64(len(n.peerList())) })
	r.GaugeFunc("eac_node_draining",
		"1 once DrainHandoff has begun (the node keeps no new copies).",
		nil, func() float64 {
			if n.draining.Load() {
				return 1
			}
			return 0
		})

	r.GaugeFunc("eac_inflight_requests",
		"Requests currently inside the front door (0 when shedding is disabled).",
		nil, func() float64 {
			if n.inflight == nil {
				return 0
			}
			return float64(len(n.inflight))
		})
	r.GaugeFunc("eac_origin_sem_inuse",
		"Origin-semaphore slots currently held by upstream fetches.",
		nil, func() float64 { return float64(len(n.originSem)) })

	r.GaugeFunc("eac_cache_expiration_age_seconds",
		"Current cache expiration age, the EA scheme's contention signal (+Inf = no contention yet).",
		nil, func() float64 {
			age := n.ExpirationAge()
			if age == cache.NoContention {
				return math.Inf(1)
			}
			return age.Seconds()
		})
	r.GaugeFunc("eac_cache_documents", "Resident documents.", nil, func() float64 {
		return float64(n.store.Len())
	})
	r.GaugeFunc("eac_cache_bytes", "Resident bytes.", nil, func() float64 {
		return float64(n.store.Used())
	})
	r.GaugeFunc("eac_cache_evictions", "Documents evicted by the replacement policy.",
		nil, func() float64 {
			return float64(n.store.Evictions())
		})

	// Tier occupancy and movement (eac_tier_*). Registered unconditionally:
	// an untiered node scrapes zeros for the disk series, so dashboards stay
	// stable across configurations.
	r.GaugeFunc("eac_tier_documents", "Resident documents, by storage tier.",
		obs.Labels{"tier": "memory"}, func() float64 { return float64(n.store.MemLen()) })
	r.GaugeFunc("eac_tier_documents", "Resident documents, by storage tier.",
		obs.Labels{"tier": "disk"}, func() float64 { return float64(n.store.DiskLen()) })
	r.GaugeFunc("eac_tier_bytes", "Resident bytes, by storage tier.",
		obs.Labels{"tier": "memory"}, func() float64 { return float64(n.store.MemUsed()) })
	r.GaugeFunc("eac_tier_bytes", "Resident bytes, by storage tier.",
		obs.Labels{"tier": "disk"}, func() float64 { return float64(n.store.DiskUsed()) })
	r.GaugeFunc("eac_tier_capacity_bytes", "Byte budget, by storage tier.",
		obs.Labels{"tier": "memory"}, func() float64 { return float64(n.store.MemCapacity()) })
	r.GaugeFunc("eac_tier_capacity_bytes", "Byte budget, by storage tier.",
		obs.Labels{"tier": "disk"}, func() float64 { return float64(n.store.DiskCapacity()) })
	r.GaugeFunc("eac_tier_demotions",
		"Memory victims moved to the disk tier instead of exiting.",
		nil, func() float64 { return float64(n.store.TierCounters().Demotions) })
	r.GaugeFunc("eac_tier_demotion_drops",
		"Memory victims the demotion rule dropped (past the disk tier's expiration age, or the tier refused them).",
		nil, func() float64 { return float64(n.store.TierCounters().DemotionDrops) })
	r.GaugeFunc("eac_tier_promotions",
		"Disk hits re-promoted into the memory tier.",
		nil, func() float64 { return float64(n.store.TierCounters().Promotions) })
	r.GaugeFunc("eac_tier_disk_evictions",
		"Documents the disk tier evicted (true exits from the node).",
		nil, func() float64 { return float64(n.store.TierCounters().DiskEvictions) })
	r.GaugeFunc("eac_tier_checksum_failures",
		"Blobs that failed checksum verification (each is dropped and the document refetched).",
		nil, func() float64 { return float64(n.store.TierCounters().ChecksumFailures) })
	return o
}

// registerPeerGauges (re-)registers the per-neighbour breaker gauges;
// every membership publish calls it so the scrape always covers the
// current member set (including ejected members, whose recovery is what
// operators watch for). Alongside the packed state value, each state
// gets a one-hot series and the last transition is exposed as an age —
// together they answer "which peers flapped, and when" straight from
// the scrape.
func (o *nodeObs) registerPeerGauges(n *Node, peers []Peer) {
	if o == nil {
		return
	}
	r := o.tel.Registry
	for _, p := range peers {
		addr := p.HTTP
		r.GaugeFunc("eac_peer_breaker_state",
			"Per-peer circuit-breaker state: 0 healthy, 1 suspect, 2 dead.",
			obs.Labels{"peer": addr},
			func() float64 { return float64(n.health.State(addr)) })
		for _, st := range []health.State{health.Healthy, health.Suspect, health.Dead} {
			st := st
			r.GaugeFunc("eac_peer_state",
				"Per-peer breaker state, one-hot by state label.",
				obs.Labels{"peer": addr, "state": st.String()},
				func() float64 {
					if n.health.State(addr) == st {
						return 1
					}
					return 0
				})
		}
		r.GaugeFunc("eac_peer_last_transition_seconds",
			"Seconds since the peer's last breaker transition (0 = never transitioned).",
			obs.Labels{"peer": addr},
			func() float64 {
				st := n.health.Status(addr)
				if st.Since.IsZero() {
					return 0
				}
				return time.Since(st.Since).Seconds()
			})
	}
}

// migration counts one migrated document's per-document result.
func (o *nodeObs) migration(result int, bytes int64) {
	if o == nil {
		return
	}
	o.migrations[result].Inc()
	if bytes > 0 {
		o.migrBytes.Add(bytes)
	}
}

// membershipEvent counts one ejection or readmission.
func (o *nodeObs) membershipEvent(ev int) {
	if o == nil {
		return
	}
	o.memEvents[ev].Inc()
}

// pushReceived counts one inbound migration handoff.
func (o *nodeObs) pushReceived(stored bool) {
	if o == nil {
		return
	}
	if stored {
		o.pushStored.Inc()
	} else {
		o.pushRefused.Inc()
	}
}

// setRecovery exposes what the last warm restart found on disk.
func (o *nodeObs) setRecovery(rep RecoveryReport) {
	if o == nil {
		return
	}
	r := o.tel.Registry
	set := func(name, help string, v float64) {
		r.Gauge(name, help, nil).Set(v)
	}
	set("eac_recovery_journal_records", "Journal records replayed at the last recovery.",
		float64(rep.JournalRecords))
	set("eac_recovery_discarded_bytes", "Corrupt journal bytes discarded at the last recovery.",
		float64(rep.DiscardedBytes))
	set("eac_recovery_restored_documents", "Documents restored into the store at the last recovery.",
		float64(rep.Restored.Entries))
	set("eac_recovery_skipped_documents", "Recovered documents skipped because they no longer fit.",
		float64(rep.Restored.Skipped))
	set("eac_recovery_disk_documents", "Disk-tier documents whose residency survived the last recovery.",
		float64(rep.Restored.DiskRestored))
	set("eac_recovery_disk_lost", "Disk-tier residency claims lost at the last recovery (blob missing or stale).",
		float64(rep.Restored.DiskLost))
}

// observeRequest records the end-to-end outcome of one Request call.
func (o *nodeObs) observeRequest(res Result, err error, dur time.Duration) {
	if o == nil {
		return
	}
	idx := outcomeIndex(res, err)
	o.requests[idx].Inc()
	o.bytes[idx].Add(res.Size)
	o.reqDur[idx].ObserveDuration(dur)
}

// observeFanout records one ICP fan-out's per-peer evidence.
func (o *nodeObs) observeFanout(replies, silent, sendFailed int) {
	if o == nil {
		return
	}
	o.icpReplies.Add(int64(replies))
	o.icpSilent.Add(int64(silent))
	o.icpSendErr.Add(int64(sendFailed))
}

// decision counts one EA placement decision.
func (o *nodeObs) decision(role, decision int) {
	if o == nil {
		return
	}
	if c := o.decisions[role][decision]; c != nil {
		c.Inc()
	}
}

// cacheEvent is the store's telemetry event sink (chained after the
// persistence sink when both are on).
func (o *nodeObs) cacheEvent(ev cache.Event) {
	if o == nil {
		return
	}
	if int(ev.Kind) < len(o.events) {
		if c := o.events[ev.Kind]; c != nil {
			c.Inc()
		}
	}
}

// digestServed counts one digest transfer answered for a peer, by kind
// (digestSyncFull or digestSyncDelta) and body size.
func (o *nodeObs) digestServed(kind, bytes int) {
	if o == nil {
		return
	}
	o.digestServedN[kind].Inc()
	o.digestBytesN[kind].Add(int64(bytes))
}

// digestApplied counts one transfer applied to a peer-digest replica.
func (o *nodeObs) digestApplied(kind int) {
	if o == nil {
		return
	}
	o.digestAppliedN[kind].Inc()
}

// digestStaleServed counts one lookup answered from a stale replica
// while a background refresh ran.
func (o *nodeObs) digestStaleServed() {
	if o == nil {
		return
	}
	o.digestStale.Inc()
}

// digestFetchFailure counts one failed peer digest fetch.
func (o *nodeObs) digestFetchFailure() {
	if o == nil {
		return
	}
	o.digestFetchErr.Inc()
}

// digestRebuildEscape counts one counter-saturation full rebuild.
func (o *nodeObs) digestRebuildEscape() {
	if o == nil {
		return
	}
	o.digestRebuilds.Inc()
}

// coalesced counts one request served as a single-flight follower.
func (o *nodeObs) coalesced() {
	if o == nil {
		return
	}
	o.coalescedFollowers.Inc()
}

// leaderElection counts one single-flight leader election.
func (o *nodeObs) leaderElection(retry bool) {
	if o == nil {
		return
	}
	if retry {
		o.leaderRetry.Inc()
	} else {
		o.leaderInitial.Inc()
	}
}

// shed counts one request refused at the front door.
func (o *nodeObs) shed() {
	if o == nil {
		return
	}
	o.sheds.Inc()
}

// observeUpstreamWait records one contended origin-semaphore acquire.
func (o *nodeObs) observeUpstreamWait(dur time.Duration) {
	if o == nil {
		return
	}
	o.upstreamWaits.Inc()
	o.upstreamWaitDur.ObserveDuration(dur)
}

// observeCheckpoint records one checkpoint attempt.
func (o *nodeObs) observeCheckpoint(dur time.Duration, err error) {
	if o == nil {
		return
	}
	o.checkpointDur.ObserveDuration(dur)
	if err != nil {
		o.checkpointErr.Inc()
	} else {
		o.checkpoints.Inc()
	}
}

// placementSpan stamps the EA decision onto the trace — a placement span
// marking where in the timeline the rule ran, with both piggybacked
// expiration ages and the verdict on the trace's top-level fields —
// counts it, and appends it to the audit log. The span itself carries no
// attributes: duplicating the ages there would cost three string
// allocations on every non-local-hit request for data the trace already
// has.
func (n *Node) placementSpan(tr *obs.Trace, role int, url string, size int64, reqAge, respAge time.Duration, decision int) {
	n.om.decision(role, decision)
	n.auditDecision(tr, role, url, decisionNames[decision], size, reqAge, respAge)
	if tr == nil {
		return
	}
	idx := tr.OpenSpan(obs.StagePlacement, time.Now())
	tr.CloseSpan(idx, 0)
	tr.RequesterAgeMS = obs.AgeMS(reqAge)
	tr.ResponderAgeMS = obs.AgeMS(respAge)
	tr.Decision = decisionNames[decision]
}

// auditDecision appends one placement verdict — with the two eq.-5
// expiration-age inputs exactly as the rule saw them — to the node's
// bounded decision log (served by /debug/placement). localAge is always
// the deciding node's own expiration age, peerAge the one piggybacked
// from the other side, whichever role this node played. Unlike traces
// the log is not sampled: every decision of every request is recorded
// (one small allocation each), because the audit's value is exactness.
func (n *Node) auditDecision(tr *obs.Trace, role int, url, verdict string, size int64, localAge, peerAge time.Duration) {
	if n.om == nil || n.om.tel == nil || n.om.tel.Placement == nil {
		return
	}
	d := &obs.Decision{
		Time: n.now(), Node: n.id, URL: url,
		Role: roleNames[role], Verdict: verdict,
		LocalAgeMS: obs.AgeMS(localAge), PeerAgeMS: obs.AgeMS(peerAge),
		SizeBytes: size,
	}
	if tr != nil {
		d.TraceID = tr.TraceID
		d.RequestID = tr.ID
	}
	n.om.tel.Placement.Record(d)
}

// stageTimer brackets one lifecycle stage. It is a plain value (no
// closure, no heap) because every stage of every request opens one.
type stageTimer struct {
	start time.Time
	span  int
	stage int8
	live  bool
}

// startStage opens one lifecycle stage on both the trace (span) and the
// stage histogram; close it with endStage. One clock read covers both
// sinks.
func (n *Node) startStage(tr *obs.Trace, stage int) stageTimer {
	if tr == nil && n.om == nil {
		return stageTimer{}
	}
	st := stageTimer{start: time.Now(), stage: int8(stage), live: true}
	st.span = tr.OpenSpan(stageNames[stage], st.start)
	return st
}

// endStage seals the stage opened by startStage.
func (n *Node) endStage(tr *obs.Trace, st stageTimer) {
	if !st.live {
		return
	}
	dur := time.Since(st.start)
	tr.CloseSpan(st.span, dur)
	if n.om != nil {
		n.om.stageDur[st.stage].ObserveDuration(dur)
	}
}
