package netnode

// Hash-mode tests: consistent-hash home routing over live sockets — the
// single-copy invariant when the group is healthy, and the degradation
// chain when homes die (next-alive owner stands in, then the requester
// itself acts as home against the origin). The death scenarios are part
// of the chaos suite (`make chaos`) and skipped under -short.

import (
	"fmt"
	"testing"
	"time"

	"eacache/internal/chash"
	"eacache/internal/core"
	"eacache/internal/health"
	"eacache/internal/metrics"
	"eacache/internal/resolve"
)

// meshHash wires nodes as full hash-mode peers, carrying each node's
// ring member name so every node builds the identical ring.
func meshHash(nodes []*Node, names []string) {
	for i, n := range nodes {
		var peers []Peer
		for j, other := range nodes {
			if i != j {
				peers = append(peers, Peer{ICP: other.ICPAddr(), HTTP: other.HTTPAddr(), Name: names[j]})
			}
		}
		n.SetPeers(peers)
	}
}

// urlWithOwners finds a URL whose ownership chain starts with the given
// member names, so a test can pin which node is home (and who stands in
// when the home dies).
func urlWithOwners(t *testing.T, ring *chash.Ring, chain ...string) string {
	t.Helper()
next:
	for i := 0; i < 1000000; i++ {
		u := fmt.Sprintf("http://hash.example.edu/doc-%d.html", i)
		owners := ring.Owners(u, len(chain))
		if len(owners) != len(chain) {
			t.Fatalf("ring returned %d owners, want %d", len(owners), len(chain))
		}
		for j, want := range chain {
			if owners[j] != want {
				continue next
			}
		}
		return u
	}
	t.Fatalf("no URL found with owner chain %v", chain)
	return ""
}

func copiesAmong(url string, nodes ...*Node) int {
	n := 0
	for _, nd := range nodes {
		if nd.Contains(url) {
			n++
		}
	}
	return n
}

// TestHashModeSingleCopy: with all nodes healthy, a document lives only
// at its home node no matter who requests it, and repeat requests are
// served from that single copy without new origin fetches.
func TestHashModeSingleCopy(t *testing.T) {
	origin := startOrigin(t)
	names := []string{"h0", "h1", "h2"}
	nodes := make([]*Node, len(names))
	for i, name := range names {
		nodes[i] = startChaosNode(t, Config{
			ID:         name,
			Store:      newStore(t, 1<<20),
			Scheme:     core.EA{},
			OriginAddr: origin.Addr(),
			Location:   resolve.LocateHash,
			HashName:   name,
		})
	}
	meshHash(nodes, names)

	ring, err := chash.New(0, names...)
	if err != nil {
		t.Fatal(err)
	}
	url := urlWithOwners(t, ring, "h1", "h2")

	// A non-home request: the home resolves from the origin and keeps
	// the only copy; the requester stores nothing.
	res, err := nodes[0].Request(url, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss || res.Stored {
		t.Fatalf("first request = %+v, want un-stored miss through the home", res)
	}
	if !nodes[1].Contains(url) || copiesAmong(url, nodes...) != 1 {
		t.Fatalf("copy not (only) at home: %d copies", copiesAmong(url, nodes...))
	}

	// Repeat from every non-home node: remote hits off the home copy.
	for _, nd := range []*Node{nodes[0], nodes[2]} {
		res, err := nd.Request(url, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != metrics.RemoteHit || res.Responder != nodes[1].HTTPAddr() || res.Stored {
			t.Fatalf("%s request = %+v, want remote hit from home", nd.ID(), res)
		}
	}
	// And at the home itself: a plain local hit.
	if res, err := nodes[1].Request(url, 4096); err != nil || res.Outcome != metrics.LocalHit {
		t.Fatalf("home request = %+v, %v", res, err)
	}
	if origin.Fetches() != 1 || copiesAmong(url, nodes...) != 1 {
		t.Fatalf("origin fetches = %d, copies = %d; want 1 and 1",
			origin.Fetches(), copiesAmong(url, nodes...))
	}
}

// TestChaosHashHomeDeathFailsOver is the hash-mode degradation chain:
// the home dies mid-operation, the requester's fetch fails and opens the
// breaker, and the ring's next-alive owner stands in as acting home —
// first resolving from the origin, then serving its copy. When every
// other owner is dead too, the requester itself acts as home against
// the origin. Every request completes; nothing wedges.
func TestChaosHashHomeDeathFailsOver(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	checkGoroutines(t)
	origin := startOrigin(t)
	names := []string{"h0", "h1", "h2", "h3"}
	nodes := make([]*Node, len(names))
	for i, name := range names {
		nodes[i] = startChaosNode(t, Config{
			ID:         name,
			Store:      newStore(t, 1<<20),
			Scheme:     core.EA{},
			OriginAddr: origin.Addr(),
			Location:   resolve.LocateHash,
			HashName:   name,
			// One failed fetch marks a peer dead, and probes stay out of
			// the test's way: the second request must already route past
			// the corpse.
			Health: health.Config{DeadAfter: 1, ProbeBase: time.Minute},
		})
	}
	meshHash(nodes, names)

	ring, err := chash.New(0, names...)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the whole failover order: home h1, stand-in h2, then the
	// requester h0 itself — so each death hands the document to a known
	// next owner.
	url := urlWithOwners(t, ring, "h1", "h2", "h0")

	// Healthy baseline: the home holds the only copy.
	if _, err := nodes[0].Request(url, 4096); err != nil {
		t.Fatal(err)
	}
	if !nodes[1].Contains(url) {
		t.Fatal("home did not keep the copy")
	}

	// The home dies. The requester's next fetch fails over to the
	// next-alive owner in the same request — the chain carries both
	// candidates — and that owner re-resolves from the origin and keeps
	// the group's copy.
	_ = nodes[1].Close()
	res, err := nodes[0].Request(url, 4096)
	if err != nil {
		t.Fatalf("request with dead home: %v", err)
	}
	if res.Outcome != metrics.Miss || res.Stored {
		t.Fatalf("dead-home request = %+v, want un-stored miss via stand-in", res)
	}
	if !nodes[2].Contains(url) {
		t.Fatal("next-alive owner did not stand in as home")
	}
	if nodes[0].Contains(url) {
		t.Fatal("requester stored despite hash placement")
	}

	// Breaker is now open on the corpse: the follow-up request goes
	// straight to the stand-in and is a remote hit off its copy.
	res, err = nodes[0].Request(url, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit || res.Responder != nodes[2].HTTPAddr() {
		t.Fatalf("failover request = %+v, want remote hit from %s", res, nodes[2].HTTPAddr())
	}
	fetchesBefore := origin.Fetches()

	// Total degradation: the stand-in dies too. The first request pays
	// the discovery fetch (it opens h2's breaker) and degrades to the
	// origin without storing — the chain still named a candidate, so
	// placement stayed with the (now dead) home. The next request sees
	// no live owner before self, so the requester acts as home: it
	// fetches from the origin and keeps the copy, and from then on the
	// document is a plain local hit.
	_ = nodes[2].Close()
	res, err = nodes[0].Request(url, 4096)
	if err != nil {
		t.Fatalf("request with all owners dead: %v", err)
	}
	if res.Outcome != metrics.Miss || res.Stored {
		t.Fatalf("discovery request = %+v, want un-stored origin miss", res)
	}
	res, err = nodes[0].Request(url, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss || !res.Stored || !nodes[0].Contains(url) {
		t.Fatalf("acting-home request = %+v (stored copy: %v), want stored miss",
			res, nodes[0].Contains(url))
	}
	if res, err := nodes[0].Request(url, 4096); err != nil || res.Outcome != metrics.LocalHit {
		t.Fatalf("post-adoption request = %+v, %v; want local hit", res, err)
	}
	if origin.Fetches() <= fetchesBefore {
		t.Fatal("degraded requests never reached the origin")
	}
}
