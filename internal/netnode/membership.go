package netnode

// Elastic membership: the node's neighbour set is mutable at runtime.
// Peers join and leave through the admin API (AddPeer/RemovePeer), and a
// peer whose circuit breaker stays dead past the configured grace window
// (Config.EjectAfter) is ejected from the locator set automatically —
// ICP fan-outs stop paying its timeout and the hash ring stops routing
// URLs to it — then readmitted when an out-of-band probe proves it back.
//
// The configured member list and the ejected set live behind one small
// mutex (n.mem); what the request path reads stays lock-free: every
// change publishes a fresh immutable peer snapshot (n.peers) and, under
// hash location, a fresh HashLocator (n.hash), both swapped atomically
// and stamped with a monotonically increasing membership epoch. A
// request therefore sees one consistent topology end to end; under hash
// location every publish also kicks the background migrator (migrate.go)
// so resident copies follow their new owners.

import (
	"errors"
	"fmt"
	"time"

	"eacache/internal/cache"
	"eacache/internal/health"
	"eacache/internal/resolve"
)

// ejection is the bookkeeping for one peer removed from the locator set.
type ejection struct {
	// since is when the grace window expired and the peer was ejected.
	since time.Time
	// nextProbe is the earliest next out-of-band readmission probe.
	nextProbe time.Time
}

// ringName is a peer's hash-ring member name (Peer.Name, defaulting to
// the fetch address).
func ringName(p Peer) string {
	if p.Name != "" {
		return p.Name
	}
	return p.HTTP
}

// publishLocked pushes the current membership out to everything the
// request path reads: breaker bookkeeping, peer gauges, the immutable
// peer snapshot, and (under hash location) a rebuilt ring stamped with
// the bumped epoch, which also kicks the migrator. Callers hold n.mem.
func (n *Node) publishLocked() {
	members := n.mem.members
	// The breaker keeps state for ejected members too — recovery is
	// decided from it — and drops only peers that left the member list.
	keep := make(map[string]bool, len(members))
	for _, p := range members {
		keep[p.HTTP] = true
	}
	n.health.Forget(keep)
	n.om.registerPeerGauges(n, members)

	active := members
	if len(n.mem.ejected) > 0 {
		active = make([]Peer, 0, len(members))
		for _, p := range members {
			if _, out := n.mem.ejected[p.HTTP]; !out {
				active = append(active, p)
			}
		}
	}
	snapshot := append([]Peer(nil), active...)
	n.peers.Store(&snapshot)
	epoch := n.epoch.Add(1)
	if n.location == resolve.LocateHash {
		n.rebuildHashRing(snapshot, epoch)
		n.kickMigration()
	}
}

// AddPeer admits a new member at runtime: validates it against the
// current set (duplicate fetch address or ring name is an error, as is
// colliding with this node's own ring name), then publishes the new
// topology and — under hash location — starts rebalancing toward it.
func (n *Node) AddPeer(p Peer) error {
	if p.ICP == nil {
		return errors.New("netnode: peer needs an ICP address")
	}
	if p.HTTP == "" {
		return errors.New("netnode: peer needs a fetch (HTTP) address")
	}
	name := ringName(p)
	n.mem.Lock()
	defer n.mem.Unlock()
	if n.location == resolve.LocateHash && name == n.hashName {
		return fmt.Errorf("netnode: peer ring name %q collides with this node's own", name)
	}
	for _, m := range n.mem.members {
		if m.HTTP == p.HTTP {
			return fmt.Errorf("netnode: peer %s is already a member", p.HTTP)
		}
		if ringName(m) == name {
			return fmt.Errorf("netnode: ring name %q is already taken by %s", name, m.HTTP)
		}
	}
	n.mem.members = append(append([]Peer(nil), n.mem.members...), p)
	n.publishLocked()
	n.warn("peer joined", nil, "peer", p.HTTP, "name", name, "epoch", n.epoch.Load())
	return nil
}

// RemovePeer removes the member whose ring name or fetch address matches
// key, publishing the shrunk topology (and, under hash location,
// rebalancing the departed member's share across the survivors).
func (n *Node) RemovePeer(key string) error {
	n.mem.Lock()
	defer n.mem.Unlock()
	idx := -1
	for i, m := range n.mem.members {
		if m.HTTP == key || ringName(m) == key {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("netnode: no member %q", key)
	}
	removed := n.mem.members[idx]
	members := make([]Peer, 0, len(n.mem.members)-1)
	members = append(members, n.mem.members[:idx]...)
	members = append(members, n.mem.members[idx+1:]...)
	n.mem.members = members
	delete(n.mem.ejected, removed.HTTP)
	n.publishLocked()
	n.warn("peer left", nil, "peer", removed.HTTP, "epoch", n.epoch.Load())
	return nil
}

// Epoch returns the membership revision: 0 before the first SetPeers,
// bumped by every join, leave, ejection, and readmission.
func (n *Node) Epoch() int64 { return n.epoch.Load() }

// RingFingerprint returns the published hash ring's topology fingerprint,
// or 0 when the node does not run hash location (or has no ring yet).
// Two members whose fingerprints match route every URL to the same home.
func (n *Node) RingFingerprint() uint64 {
	if h := n.hash.Load(); h != nil {
		return h.Fingerprint
	}
	return 0
}

// ActivePeers returns how many peers are currently in the locator set
// (configured members minus ejected ones).
func (n *Node) ActivePeers() int { return len(n.peerList()) }

// warming reports whether the node is inside its JoinWarmup window
// (set only under hash location): it serves what it holds and relays,
// but keeps no new copies, because peers with a pre-join view of the
// ring may still hold the copies it would otherwise duplicate.
func (n *Node) warming() bool {
	return !n.warmUntil.IsZero() && time.Now().Before(n.warmUntil)
}

// mayKeepResolved decides whether this node, asked to resolve a URL it
// does not hold, may keep the fetched copy as the group's only one. The
// requester's topology fingerprint is the evidence: a match means the
// requester routes over the same membership this node does and still
// chose it — every ring owner before this node failed the requester's
// health checks — so standing in as the acting home is exactly the
// failover the hash scheme promises. A mismatched (or absent)
// fingerprint means the requester's view is stale; the URL's real owner
// under the current ring may be alive and already holding the copy, so
// this node relays the body without storing rather than mint a second
// copy. Draining and warming nodes never keep.
func (n *Node) mayKeepResolved(reqFP uint64) bool {
	if n.draining.Load() || n.warming() {
		return false
	}
	h := n.hash.Load()
	if h == nil {
		return true
	}
	return reqFP != 0 && reqFP == h.Fingerprint
}

// Draining reports whether DrainHandoff has begun: the node still serves
// and relays, but keeps no new copies.
func (n *Node) Draining() bool { return n.draining.Load() }

// MemberStatus is one configured member's membership row, JSON-shaped
// for the admin API.
type MemberStatus struct {
	Name string `json:"name"`
	ICP  string `json:"icp"`
	HTTP string `json:"http"`
	// Admin is the member's admin/debug HTTP address when the joining
	// side shared one — the handle cluster introspection (cmd/eacctl)
	// uses to walk from any one member to the whole group.
	Admin    string `json:"admin,omitempty"`
	State    string `json:"state"`
	Failures int    `json:"failures"`
	// StateSince is when the breaker entered its current state
	// (RFC 3339; empty for a peer that has never transitioned).
	StateSince string `json:"state_since,omitempty"`
	// Ejected marks a member currently outside the locator set; it
	// rejoins automatically when a readmission probe succeeds.
	Ejected    bool   `json:"ejected"`
	EjectedFor string `json:"ejected_for,omitempty"`
}

// Members returns every configured member (including ejected ones) with
// its breaker and ejection status.
func (n *Node) Members() []MemberStatus {
	now := time.Now()
	n.mem.Lock()
	defer n.mem.Unlock()
	out := make([]MemberStatus, 0, len(n.mem.members))
	for _, p := range n.mem.members {
		st := n.health.Status(p.HTTP)
		ms := MemberStatus{
			Name:     ringName(p),
			ICP:      p.ICP.String(),
			HTTP:     p.HTTP,
			Admin:    p.Admin,
			State:    st.State.String(),
			Failures: st.Failures,
		}
		if !st.Since.IsZero() {
			ms.StateSince = st.Since.UTC().Format(time.RFC3339Nano)
		}
		if ej, out := n.mem.ejected[p.HTTP]; out {
			ms.Ejected = true
			ms.EjectedFor = now.Sub(ej.since).Round(time.Millisecond).String()
		}
		out = append(out, ms)
	}
	return out
}

// membershipLoop is the ejection/readmission sweeper, started when
// Config.EjectAfter is set. It ticks a few times per grace window so an
// ejection lands within ~EjectAfter*5/4 of the breaker opening, and at
// least every half probe interval so recoveries are noticed promptly.
func (n *Node) membershipLoop() {
	defer n.wg.Done()
	tick := n.ejectAfter / 4
	if probe := n.readmitProbe / 2; probe > 0 && probe < tick {
		tick = probe
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-t.C:
			n.sweepMembership(time.Now())
		}
	}
}

// sweepMembership ejects members dead past the grace window and probes
// ejected ones for readmission. Ejection is measured on the real clock
// (breaker timestamps use it too, unless a test injects its own).
func (n *Node) sweepMembership(now time.Time) {
	var toProbe []Peer
	n.mem.Lock()
	changed := false
	for _, p := range n.mem.members {
		if ej, out := n.mem.ejected[p.HTTP]; out {
			if n.health.Status(p.HTTP).State == health.Healthy {
				// An in-flight exchange already proved the peer back
				// (e.g. it answered a stale requester); skip the probe.
				delete(n.mem.ejected, p.HTTP)
				n.noteReadmission(p, "in-band success")
				changed = true
			} else if !now.Before(ej.nextProbe) {
				ej.nextProbe = now.Add(n.readmitProbe)
				toProbe = append(toProbe, p)
			}
			continue
		}
		st := n.health.Status(p.HTTP)
		if st.State == health.Dead && !st.Since.IsZero() && now.Sub(st.Since) >= n.ejectAfter {
			n.mem.ejected[p.HTTP] = &ejection{since: now, nextProbe: now.Add(n.readmitProbe)}
			n.robust.Ejection()
			n.om.membershipEvent(memEjection)
			n.warn("peer ejected after grace window", nil,
				"peer", p.HTTP, "dead_for", now.Sub(st.Since), "grace", n.ejectAfter)
			changed = true
		}
	}
	if changed {
		n.publishLocked()
	}
	n.mem.Unlock()

	// Probe outside the lock: each probe is a bounded network exchange.
	for _, p := range toProbe {
		if n.probePeer(p.HTTP) {
			n.readmit(p)
		}
	}
}

// probeURL is the synthetic document fetched by readmission probes. Any
// answer — hit or application-level miss — proves the peer's fetch path
// is back; only transport failures keep it ejected. The probe is
// out-of-band because an ejected peer is outside the fan-out set, so the
// breaker's own in-band probes stop reaching it.
const probeURL = "http://eacache.invalid/readmit-probe"

func (n *Node) probePeer(addr string) bool {
	_, _, _, err := n.fetchFrom(nil, addr, probeURL, 0, cache.NoContention, false)
	return err == nil || errors.Is(err, errNotFound)
}

// readmit restores an ejected peer after a successful probe: breaker
// snapped healthy first, so the republished locator set accepts it.
func (n *Node) readmit(p Peer) {
	n.health.ReportSuccess(p.HTTP)
	n.mem.Lock()
	defer n.mem.Unlock()
	if _, out := n.mem.ejected[p.HTTP]; !out {
		return
	}
	delete(n.mem.ejected, p.HTTP)
	n.noteReadmission(p, "probe success")
	n.publishLocked()
}

// noteReadmission records one readmission; callers hold n.mem.
func (n *Node) noteReadmission(p Peer, how string) {
	n.robust.Readmission()
	n.om.membershipEvent(memReadmission)
	n.warn("peer readmitted", nil, "peer", p.HTTP, "via", how)
}
