package netnode

// Chaos tests: a live cooperative group under injected faults — dead
// peers, lost datagrams, peers crashing mid-fetch, stalled origins. Each
// test asserts that requests still complete with the right degraded
// outcome, that the degradation is visible in the robustness counters,
// and that no goroutines leak. Guarded by -short so tier-1 stays fast.

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"eacache/internal/core"
	"eacache/internal/faults"
	"eacache/internal/health"
	"eacache/internal/icp"
	"eacache/internal/metrics"
)

// checkGoroutines fails the test if goroutines outlive the test's own
// cleanups. Call it first so its cleanup runs after every node's Close.
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<17)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	})
}

// startChaosNode starts a node from a full Config with test cleanups.
func startChaosNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	if cfg.ICPAddr == "" {
		cfg.ICPAddr = "127.0.0.1:0"
	}
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	if cfg.Store == nil {
		cfg.Store = newStore(t, 1<<20)
	}
	if cfg.Scheme == nil {
		cfg.Scheme = core.AdHoc{}
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

// deadTCPAddr returns a loopback TCP address that refuses connections.
func deadTCPAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// fakeHitPeer is a peer whose ICP side answers HIT for every URL and whose
// fetch side is the given TCP address — a liar, a crasher, or a corpse,
// depending on what listens there.
func fakeHitPeer(t *testing.T, httpAddr string) Peer {
	t.Helper()
	srv, err := icp.NewServer("127.0.0.1:0", icp.HandlerFunc(func(string) icp.Opcode { return icp.OpHit }), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return Peer{ICP: srv.Addr(), HTTP: httpAddr}
}

// TestBreakerAvoidsICPTimeoutOnceOpen is the headline scenario: one of
// four peers is hard down. The first few misses pay the full ICP timeout
// (the dead peer is silent), the breaker opens, and from then on misses
// resolve as fast as the live peers answer — the dead neighbour no longer
// taxes every request.
func TestBreakerAvoidsICPTimeoutOnceOpen(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	checkGoroutines(t)
	origin := startOrigin(t)

	const icpTimeout = 400 * time.Millisecond
	mk := func(id string) *Node {
		return startChaosNode(t, Config{
			ID:         id,
			Scheme:     core.EA{},
			OriginAddr: origin.Addr(),
			ICPTimeout: icpTimeout,
			Health: health.Config{
				SuspectAfter: 1,
				DeadAfter:    2,
				ProbeBase:    time.Minute, // no probes during the test
			},
		})
	}
	nodes := []*Node{mk("n0"), mk("n1"), mk("n2"), mk("n3")}
	mesh(nodes...)

	// Hard-down: n3 dies.
	deadHTTP := nodes[3].HTTPAddr()
	if err := nodes[3].Close(); err != nil {
		t.Fatal(err)
	}

	// Warm-up misses: each timed-out fan-out is one strike against the
	// silent peer; two strikes open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := nodes[0].Request(fmt.Sprintf("http://warm/doc%d", i), 1000); err != nil {
			t.Fatalf("warm-up request %d: %v", i, err)
		}
	}
	opened := false
	for _, ps := range nodes[0].PeerHealth() {
		if ps.Peer == deadHTTP && ps.State == health.Dead {
			opened = true
		}
	}
	if !opened {
		t.Fatalf("breaker did not open for the dead peer; health = %+v", nodes[0].PeerHealth())
	}
	if rb := nodes[0].Robustness(); rb.BreakerOpens == 0 || rb.PeerFailures == 0 {
		t.Fatalf("robustness = %+v, want breaker open + peer failures recorded", rb)
	}

	// Steady state: misses no longer pay the ICP timeout, because the
	// dead peer is excluded and every live peer answers promptly.
	for i := 0; i < 5; i++ {
		start := time.Now()
		res, err := nodes[0].Request(fmt.Sprintf("http://steady/doc%d", i), 1000)
		if err != nil {
			t.Fatalf("steady-state request %d: %v", i, err)
		}
		if res.Outcome != metrics.Miss {
			t.Fatalf("steady-state request %d outcome = %v, want miss", i, res.Outcome)
		}
		if elapsed := time.Since(start); elapsed >= icpTimeout/2 {
			t.Fatalf("steady-state request %d took %v, still paying the %v ICP timeout", i, elapsed, icpTimeout)
		}
	}

	// Cooperation among the surviving peers still works: n0 cached
	// doc0 above, so n1 gets a remote hit from it (EA does not
	// replicate on a cold tie, so no local copy either way).
	res, err := nodes[1].Request("http://steady/doc0", 1000)
	if err != nil || res.Outcome != metrics.RemoteHit {
		t.Fatalf("survivor cooperative hit = %+v, %v", res, err)
	}
}

// TestRemoteHitFetchFailureFallsBackToOrigin: a neighbour answers HIT but
// its fetch port refuses connections. The request must degrade to the
// origin and still succeed, with the failure, fallback, and breaker
// transition all recorded.
func TestRemoteHitFetchFailureFallsBackToOrigin(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	checkGoroutines(t)
	origin := startOrigin(t)

	n := startChaosNode(t, Config{
		ID:         "n",
		Scheme:     core.AdHoc{},
		OriginAddr: origin.Addr(),
		ICPTimeout: 500 * time.Millisecond,
		Health:     health.Config{DeadAfter: 1, ProbeBase: time.Minute},
	})
	liar := fakeHitPeer(t, deadTCPAddr(t))
	n.SetPeers([]Peer{liar})

	res, err := n.Request("http://x/doc", 2048)
	if err != nil {
		t.Fatalf("request failed instead of degrading to origin: %v", err)
	}
	if res.Outcome != metrics.Miss || res.Size != 2048 {
		t.Fatalf("res = %+v, want an origin miss", res)
	}
	if origin.Fetches() != 1 {
		t.Fatalf("origin fetches = %d, want 1", origin.Fetches())
	}
	rb := n.Robustness()
	if rb.PeerFailures == 0 || rb.Fallbacks == 0 {
		t.Fatalf("robustness = %+v, want peer failure + fallback recorded", rb)
	}
	if rb.BreakerOpens == 0 {
		t.Fatalf("robustness = %+v, want breaker open after the failed fetch", rb)
	}
	// With the breaker open the liar is skipped entirely: no ICP wait,
	// straight to origin.
	start := time.Now()
	if _, err := n.Request("http://x/doc2", 1024); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("request with open breaker took %v, want near-instant origin path", elapsed)
	}
}

// TestPeerCrashMidFetchRetriesNextResponder: two neighbours answer HIT;
// the one that crashes mid-body must not fail the request — the fetch is
// retried against the other copy holder.
func TestPeerCrashMidFetchRetriesNextResponder(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	checkGoroutines(t)
	origin := startOrigin(t)

	// The crasher: advertises HIT, then sends a response head promising
	// 8KB and dies after 100 bytes.
	crashLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = crashLn.Close() })
	go func() {
		for {
			conn, err := crashLn.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				_, _ = c.Read(buf) // swallow the request head
				_, _ = fmt.Fprintf(c, "EAC/1.0 200 OK\r\nX-Cache-Expiration-Age: 0\r\nContent-Length: 8192\r\n\r\n")
				_, _ = c.Write(make([]byte, 100)) // die mid-body
			}(conn)
		}
	}()
	crasher := fakeHitPeer(t, crashLn.Addr().String())

	// The honest copy holder: a real node seeded with the document.
	holder := startChaosNode(t, Config{ID: "holder", OriginAddr: origin.Addr()})
	if _, err := holder.Request("http://x/doc", 4096); err != nil {
		t.Fatal(err)
	}

	n := startChaosNode(t, Config{
		ID:         "n",
		Scheme:     core.AdHoc{},
		OriginAddr: origin.Addr(),
		ICPTimeout: 500 * time.Millisecond,
	})
	n.SetPeers([]Peer{crasher, {ICP: holder.ICPAddr(), HTTP: holder.HTTPAddr()}})

	res, err := n.Request("http://x/doc", 4096)
	if err != nil {
		t.Fatalf("request failed instead of retrying the other copy holder: %v", err)
	}
	// Whichever HIT arrived first, only the honest holder can complete
	// the fetch; a crasher-first ordering exercises the retry, a
	// holder-first ordering never touches the crasher. Either way the
	// client sees a remote hit.
	if res.Outcome != metrics.RemoteHit || res.Responder != holder.HTTPAddr() {
		t.Fatalf("res = %+v, want remote hit from the honest holder", res)
	}
	if origin.Fetches() != 1 {
		t.Fatalf("origin fetches = %d, want only the seeding fetch", origin.Fetches())
	}
}

// TestUDPLossGroupStillCompletes: a 4-node group with ~30% datagram loss
// on every query socket keeps answering every request; cooperation
// degrades (lost replies look like misses) but never errors.
func TestUDPLossGroupStillCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	checkGoroutines(t)
	origin := startOrigin(t)

	nodes := make([]*Node, 4)
	for i := range nodes {
		inj, err := faults.New(faults.Config{Seed: int64(i + 1), UDPDropRate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = startChaosNode(t, Config{
			ID:         fmt.Sprintf("n%d", i),
			Scheme:     core.EA{},
			OriginAddr: origin.Addr(),
			ICPTimeout: 100 * time.Millisecond,
			Faults:     inj,
			// Peers will look flaky; probe quickly so nobody is
			// excluded for long.
			Health: health.Config{DeadAfter: 3, ProbeBase: 50 * time.Millisecond, ProbeMax: 200 * time.Millisecond},
		})
	}
	mesh(nodes...)

	var counters metrics.Counters
	for i := 0; i < 160; i++ {
		node := nodes[i%len(nodes)]
		url := fmt.Sprintf("http://lossy/doc%02d", i%16)
		res, err := node.Request(url, 1200)
		if err != nil {
			t.Fatalf("request %d under 30%% UDP loss: %v", i, err)
		}
		counters.Record(res.Outcome, res.Size)
	}
	if snap := counters.Snapshot(); snap.Requests != 160 || snap.Hits() == 0 {
		t.Fatalf("counters = %+v, want all requests served with some hits", snap)
	}
}

// TestStalledOriginTimesOutCleanly: the origin accepts and then never
// speaks. The request must fail within the configured budget (dial +
// fetch timeouts times the retry count), not hang, and not leak the
// fetching goroutine.
func TestStalledOriginTimesOutCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	checkGoroutines(t)

	stalled, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = stalled.Close() })
	go func() {
		for {
			conn, err := stalled.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, say nothing
		}
	}()

	n := startChaosNode(t, Config{
		ID:           "n",
		OriginAddr:   stalled.Addr().String(),
		DialTimeout:  200 * time.Millisecond,
		FetchTimeout: 300 * time.Millisecond,
		// Default FetchAttempts (2): one retry, then give up.
	})

	start := time.Now()
	_, err = n.Request("http://x/doc", 1000)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("request against a stalled origin succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("stalled-origin request took %v, want bounded by the timeout budget", elapsed)
	}
	if rb := n.Robustness(); rb.Retries == 0 {
		t.Fatalf("robustness = %+v, want the retry recorded", rb)
	}
}

// TestConfigTimeoutValidation: the new Config fields reject negatives and
// default the zeros.
func TestConfigTimeoutValidation(t *testing.T) {
	store := newStore(t, 1<<20)
	bad := []Config{
		{Store: store, Scheme: core.EA{}, DialTimeout: -time.Second},
		{Store: store, Scheme: core.EA{}, FetchTimeout: -time.Second},
		{Store: store, Scheme: core.EA{}, FetchAttempts: -1},
	}
	for i, cfg := range bad {
		cfg.ICPAddr, cfg.HTTPAddr = "127.0.0.1:0", "127.0.0.1:0"
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}

	n := startChaosNode(t, Config{ID: "n"})
	if n.dialTimeout != DefaultDialTimeout || n.fetchTimeout != DefaultFetchTimeout || n.fetchAttempts != DefaultFetchAttempts {
		t.Fatalf("defaults = %v/%v/%d", n.dialTimeout, n.fetchTimeout, n.fetchAttempts)
	}
}

// TestChaosFlaggedNodeServes: a node with an active injector on every
// socket still serves a basic workload (sanity for proxyd's -chaos mode).
func TestChaosFlaggedNodeServes(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	checkGoroutines(t)
	origin := startOrigin(t)
	inj, err := faults.New(faults.Config{Seed: 7, UDPDropRate: 0.2, TCPByteDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	n := startChaosNode(t, Config{ID: "n", OriginAddr: origin.Addr(), Faults: inj})
	for i := 0; i < 10; i++ {
		if _, err := n.Request(fmt.Sprintf("http://chaos/%d", i%3), 800); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if inj.Stats() == (faults.Stats{}) {
		t.Log("note: no faults fired in this run (all sockets, low rates)")
	}
}
