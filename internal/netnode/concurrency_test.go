package netnode

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/metrics"
)

func newShardedStore(t *testing.T, capacity int64, shards int) *cache.ShardedStore {
	t.Helper()
	s, err := cache.NewSharded(cache.ShardedConfig{
		Shards:            shards,
		Capacity:          capacity,
		ExpirationHorizon: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestNodeConcurrentRequests hammers one live node from many goroutines
// over the real sockets: local hits, remote hits fetched from a peer, and
// origin misses all running at once. The race detector (make test-race)
// checks the lock-free request path; the assertions check that no request
// fails or misclassifies under contention.
func TestNodeConcurrentRequests(t *testing.T) {
	origin := startOrigin(t)
	a, err := New(Config{
		ID:         "a",
		ICPAddr:    "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Store:      newShardedStore(t, 8<<20, 8),
		Scheme:     core.AdHoc{},
		OriginAddr: origin.Addr(),
		ICPTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b := startNode(t, "b", 8<<20, core.AdHoc{}, origin.Addr())
	mesh(a, b)

	// Warm each side: localURLs live at a (local hits), peerURLs only at
	// b (ICP remote hits for a).
	var localURLs, peerURLs []string
	for i := 0; i < 16; i++ {
		lu := fmt.Sprintf("http://local.example.edu/d%d", i)
		pu := fmt.Sprintf("http://peer.example.edu/d%d", i)
		localURLs = append(localURLs, lu)
		peerURLs = append(peerURLs, pu)
		if _, err := a.Request(lu, 1024); err != nil {
			t.Fatalf("warm a: %v", err)
		}
		if _, err := b.Request(pu, 1024); err != nil {
			t.Fatalf("warm b: %v", err)
		}
	}

	const workers = 24
	const perWorker = 30
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		outcomes = map[metrics.Outcome]int{}
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var url string
				switch i % 3 {
				case 0:
					url = localURLs[(w+i)%len(localURLs)]
				case 1:
					url = peerURLs[(w+i)%len(peerURLs)]
				default:
					url = fmt.Sprintf("http://cold.example.edu/w%d-d%d", w, i)
				}
				res, err := a.Request(url, 1024)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("worker %d request %s: %w", w, url, err)
				}
				outcomes[res.Outcome]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	total := 0
	for _, c := range outcomes {
		total += c
	}
	if total != workers*perWorker {
		t.Fatalf("served %d requests, want %d", total, workers*perWorker)
	}
	if outcomes[metrics.LocalHit] == 0 {
		t.Fatal("no local hits under concurrency")
	}
	if outcomes[metrics.RemoteHit] == 0 {
		t.Fatal("no remote hits under concurrency")
	}
	if outcomes[metrics.Miss] == 0 {
		t.Fatal("no origin misses under concurrency")
	}
	// Warm documents must still be resident and the EA signal readable.
	for _, u := range localURLs {
		if !a.Contains(u) {
			t.Fatalf("local document %s lost under concurrency", u)
		}
	}
	_ = a.ExpirationAge()
}

// Concurrent requests against a node whose peers are being swapped must
// never observe a torn peer set (race detector) nor fail.
func TestNodeConcurrentSetPeers(t *testing.T) {
	origin := startOrigin(t)
	a := startNode(t, "a", 1<<20, core.AdHoc{}, origin.Addr())
	b := startNode(t, "b", 1<<20, core.AdHoc{}, origin.Addr())
	mesh(a, b)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		peers := []Peer{{ICP: b.ICPAddr(), HTTP: b.HTTPAddr()}}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				a.SetPeers(nil)
			} else {
				a.SetPeers(peers)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := a.Request(fmt.Sprintf("http://swap.example.edu/d%d", i%20), 512); err != nil {
			close(done)
			wg.Wait()
			t.Fatalf("request %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()
}
