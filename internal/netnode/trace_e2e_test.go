package netnode

import (
	"bufio"
	"io"
	"net"
	"testing"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/hproto"
	"eacache/internal/metrics"
	"eacache/internal/obs"
)

// TestCrossPeerTracePropagation is the tentpole acceptance test: one
// remote hit on a live two-node group must leave records carrying the
// SAME group-wide trace ID in both nodes' rings — the requester's
// front-door record and the responder's remote-parented serve record —
// linked parent-to-child so eacctl can stitch them into one timeline.
func TestCrossPeerTracePropagation(t *testing.T) {
	origin := startOrigin(t)
	a, telA := startObservedNode(t, "a", core.EA{}, origin.Addr())
	b, telB := startObservedNode(t, "b", core.EA{}, origin.Addr())
	mesh(a, b)

	const url = "http://trace.example.edu/doc"
	if _, err := a.Request(url, 2048); err != nil {
		t.Fatal(err)
	}
	res, err := b.Request(url, 2048)
	if err != nil || res.Outcome != metrics.RemoteHit {
		t.Fatalf("remote hit: res=%+v err=%v", res, err)
	}
	if len(res.TraceID) != 16 {
		t.Fatalf("Result.TraceID = %q, want a 16-hex group trace ID", res.TraceID)
	}

	// Requester side: b's ring holds the front-door record at hop 0.
	var reqRec *obs.Trace
	for _, tr := range telB.Traces.SnapshotTrace(res.TraceID) {
		if tr.URL == url {
			reqRec = tr
		}
	}
	if reqRec == nil {
		t.Fatalf("requester ring has no record for trace %s", res.TraceID)
	}
	if reqRec.Hop != 0 || reqRec.ParentID != "" {
		t.Fatalf("front-door record: hop=%d parent=%q, want 0/empty", reqRec.Hop, reqRec.ParentID)
	}

	// Responder side: a's ring holds a remote-parented serve record for
	// the same trace ID, one hop deeper, parented by b's record.
	serveRecs := telA.Traces.SnapshotTrace(res.TraceID)
	if len(serveRecs) != 1 {
		t.Fatalf("responder ring holds %d records for trace %s, want 1", len(serveRecs), res.TraceID)
	}
	serve := serveRecs[0]
	if serve.Node != "a" || serve.URL != url {
		t.Fatalf("serve record = %+v", serve)
	}
	if serve.Hop != 1 {
		t.Fatalf("serve record hop = %d, want 1", serve.Hop)
	}
	if serve.ParentID != reqRec.ID {
		t.Fatalf("serve record parent = %q, want requester record %q", serve.ParentID, reqRec.ID)
	}
	if serve.Outcome != outcomeServeHit {
		t.Fatalf("serve record outcome = %q, want %q", serve.Outcome, outcomeServeHit)
	}
	var served bool
	for _, sp := range serve.Spans {
		if sp.Stage == obs.StageServe {
			served = true
		}
	}
	if !served {
		t.Fatalf("serve record lacks the %s span: %+v", obs.StageServe, serve.Spans)
	}

	// The requester's remote-fetch span learned the responder's record ID
	// from the echoed response context — the reverse stitching edge.
	var remoteID string
	for _, sp := range reqRec.Spans {
		if v := sp.Attrs.Get("remote_id"); v != "" {
			remoteID = v
		}
	}
	if remoteID != serve.ID {
		t.Fatalf("requester remote_id = %q, want responder record %q", remoteID, serve.ID)
	}

	// The placement audit on both sides carries the same trace ID: b made
	// a requester store decision, a made a responder promote decision.
	var reqDecision, respDecision *obs.Decision
	for _, d := range telB.Placement.Snapshot() {
		if d.TraceID == res.TraceID && d.Role == obs.RoleRequester {
			reqDecision = d
		}
	}
	for _, d := range telA.Placement.Snapshot() {
		if d.TraceID == res.TraceID && d.Role == obs.RoleResponder {
			respDecision = d
		}
	}
	if reqDecision == nil {
		t.Fatal("requester decision log has no entry for the trace")
	}
	if respDecision == nil {
		t.Fatal("responder decision log has no entry for the trace")
	}
	if reqDecision.URL != url || respDecision.URL != url {
		t.Fatalf("decision URLs: %q / %q", reqDecision.URL, respDecision.URL)
	}
	// Fresh caches on both sides: the EA inputs are the no-contention
	// sentinel, and strict EA rejects on the tie.
	if reqDecision.Verdict != obs.DecisionReject || respDecision.Verdict != obs.DecisionReject {
		t.Fatalf("verdicts = %q / %q, want reject/reject on an age tie",
			reqDecision.Verdict, respDecision.Verdict)
	}
	if reqDecision.LocalAgeMS != -1 || reqDecision.PeerAgeMS != -1 {
		t.Fatalf("requester decision ages = %d/%d, want -1/-1", reqDecision.LocalAgeMS, reqDecision.PeerAgeMS)
	}
	if reqDecision.SizeBytes != 2048 {
		t.Fatalf("requester decision size = %d, want 2048", reqDecision.SizeBytes)
	}
}

// TestMalformedTraceContextNeverFatal pins the robustness contract: a
// peer sending garbage in X-Trace-Context still gets served, and the
// damage is visible only as a clamp counter tick.
func TestMalformedTraceContextNeverFatal(t *testing.T) {
	origin := startOrigin(t)
	a, _ := startObservedNode(t, "a", core.EA{}, origin.Addr())

	const url = "http://trace.example.edu/garbage"
	if _, err := a.Request(url, 512); err != nil {
		t.Fatal(err)
	}

	before := a.Robustness().TraceClamps
	resp := rawFetchWithTrace(t, a.HTTPAddr(), url, "not/a/valid/context/at/all/&&&")
	if resp.Status != hproto.StatusOK {
		t.Fatalf("fetch with malformed trace context = %d, want %d", resp.Status, hproto.StatusOK)
	}
	after := a.Robustness().TraceClamps
	if after != before+1 {
		t.Fatalf("TraceClamps = %d, want %d", after, before+1)
	}

	// A hop count at the forwarding limit is refused the same way: count
	// a clamp, serve untraced, never error.
	before = after
	resp = rawFetchWithTrace(t, a.HTTPAddr(), url, "0123456789abcdef/p/64/1")
	if resp.Status != hproto.StatusOK {
		t.Fatalf("fetch at hop limit = %d, want %d", resp.Status, hproto.StatusOK)
	}
	if got := a.Robustness().TraceClamps; got != before+1 {
		t.Fatalf("TraceClamps = %d, want %d", got, before+1)
	}
}

// rawFetchWithTrace speaks hproto directly so the test can put an
// arbitrary string on the trace header — the typed client API only sends
// well-formed contexts.
func rawFetchWithTrace(t *testing.T, addr, url, trace string) hproto.Response {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	req := hproto.Request{URL: url, RequesterAge: cache.NoContention, Trace: trace}
	if err := hproto.WriteRequest(bw, req); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := hproto.ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContentLength > 0 {
		if _, err := io.CopyN(io.Discard, br, resp.ContentLength); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}
