package netnode

// Elastic-membership tests: runtime join/leave validation and publishing,
// breaker-driven ejection and readmission, EA-aware migration on topology
// change, drain handoff, push acceptance, and the admin API. The full
// kill-and-join-under-traffic scenario lives in churn_test.go.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/chash"
	"eacache/internal/core"
	"eacache/internal/health"
	"eacache/internal/metrics"
	"eacache/internal/resolve"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func udpAddr(t *testing.T, s string) *net.UDPAddr {
	t.Helper()
	a, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAddPeerValidation(t *testing.T) {
	n := startChaosNode(t, Config{
		ID: "v0", Scheme: core.EA{}, Location: resolve.LocateHash, HashName: "v0",
	})
	icp := udpAddr(t, "127.0.0.1:19001")
	if err := n.AddPeer(Peer{HTTP: "127.0.0.1:19101"}); err == nil {
		t.Fatal("peer without ICP address accepted")
	}
	if err := n.AddPeer(Peer{ICP: icp}); err == nil {
		t.Fatal("peer without fetch address accepted")
	}
	if err := n.AddPeer(Peer{ICP: icp, HTTP: "127.0.0.1:19101", Name: "v0"}); err == nil {
		t.Fatal("peer colliding with own ring name accepted")
	}
	if err := n.AddPeer(Peer{ICP: icp, HTTP: "127.0.0.1:19101", Name: "v1"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPeer(Peer{ICP: icp, HTTP: "127.0.0.1:19101", Name: "v9"}); err == nil {
		t.Fatal("duplicate fetch address accepted")
	}
	if err := n.AddPeer(Peer{ICP: icp, HTTP: "127.0.0.1:19102", Name: "v1"}); err == nil {
		t.Fatal("duplicate ring name accepted")
	}
}

func TestAddRemovePeerPublishes(t *testing.T) {
	n := startChaosNode(t, Config{
		ID: "p0", Scheme: core.EA{}, Location: resolve.LocateHash, HashName: "p0",
	})
	if n.Epoch() != 0 {
		t.Fatalf("fresh node epoch = %d", n.Epoch())
	}
	p := Peer{ICP: udpAddr(t, "127.0.0.1:19011"), HTTP: "127.0.0.1:19111", Name: "p1"}
	if err := n.AddPeer(p); err != nil {
		t.Fatal(err)
	}
	if n.Epoch() != 1 || len(n.peerList()) != 1 {
		t.Fatalf("after join: epoch %d, %d peers", n.Epoch(), len(n.peerList()))
	}
	h := n.hash.Load()
	if h == nil || !h.Ring.Contains("p1") || h.Epoch != 1 {
		t.Fatalf("locator not rebuilt for join: %+v", h)
	}
	// Removal works by ring name as well as by fetch address.
	if err := n.RemovePeer("p1"); err != nil {
		t.Fatal(err)
	}
	if n.Epoch() != 2 || len(n.peerList()) != 0 {
		t.Fatalf("after leave: epoch %d, %d peers", n.Epoch(), len(n.peerList()))
	}
	if h = n.hash.Load(); h.Ring.Contains("p1") {
		t.Fatal("locator still routes to the departed peer")
	}
	if err := n.RemovePeer("p1"); err == nil {
		t.Fatal("double remove accepted")
	}
}

// TestEjectionAndReadmission: a peer dead past the grace window leaves
// the locator set (epoch bump, ejected flag in the membership table) and
// rejoins when the breaker proves it back in-band.
func TestEjectionAndReadmission(t *testing.T) {
	checkGoroutines(t)
	origin := startOrigin(t)
	n := startChaosNode(t, Config{
		ID: "e0", Scheme: core.EA{}, OriginAddr: origin.Addr(),
		Location: resolve.LocateHash, HashName: "e0",
		Health:       health.Config{DeadAfter: 1, ProbeBase: time.Minute},
		EjectAfter:   20 * time.Millisecond,
		ReadmitProbe: 10 * time.Millisecond,
	})
	dead := deadTCPAddr(t)
	if err := n.AddPeer(Peer{ICP: udpAddr(t, "127.0.0.1:19021"), HTTP: dead, Name: "e1"}); err != nil {
		t.Fatal(err)
	}
	epochAfterJoin := n.Epoch()

	// Fail a fetch against the corpse so the breaker opens; the sweeper
	// must then eject it within a few grace windows.
	ring, err := chash.New(0, "e0", "e1")
	if err != nil {
		t.Fatal(err)
	}
	url := urlWithOwners(t, ring, "e1", "e0")
	if _, err := n.Request(url, 1024); err != nil {
		t.Fatalf("request against dead home should degrade, got %v", err)
	}
	waitFor(t, 2*time.Second, "ejection", func() bool {
		for _, m := range n.Members() {
			if m.HTTP == dead && m.Ejected {
				return true
			}
		}
		return false
	})
	if n.Epoch() <= epochAfterJoin {
		t.Fatal("ejection did not publish a new epoch")
	}
	if len(n.peerList()) != 0 {
		t.Fatal("ejected peer still in the active snapshot")
	}
	if h := n.hash.Load(); h.Ring.Contains("e1") {
		t.Fatal("ejected peer still on the ring")
	}
	if rb := n.Robustness(); rb.Ejections != 1 {
		t.Fatalf("ejections = %d, want 1", rb.Ejections)
	}

	// In-band recovery: the breaker learns the peer is back (here via a
	// direct success report); the next sweep readmits without a probe.
	n.health.ReportSuccess(dead)
	waitFor(t, 2*time.Second, "readmission", func() bool {
		return len(n.peerList()) == 1
	})
	if h := n.hash.Load(); !h.Ring.Contains("e1") {
		t.Fatal("readmitted peer not back on the ring")
	}
	if rb := n.Robustness(); rb.Readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1", rb.Readmissions)
	}
}

// startHashGroup boots a fully meshed hash group over fresh nodes.
func startHashGroup(t *testing.T, origin *OriginServer, names ...string) []*Node {
	t.Helper()
	nodes := make([]*Node, len(names))
	for i, name := range names {
		nodes[i] = startChaosNode(t, Config{
			ID: name, Scheme: core.EA{}, OriginAddr: origin.Addr(),
			Location: resolve.LocateHash, HashName: name,
		})
	}
	meshHash(nodes, names)
	return nodes
}

// TestMigrationOnJoin: documents resident before a join are handed to the
// joiner when the new ring makes it their home, the accounting balances,
// and no document ever has more than one copy.
func TestMigrationOnJoin(t *testing.T) {
	checkGoroutines(t)
	origin := startOrigin(t)
	nodes := startHashGroup(t, origin, "m0", "m1")

	const docs = 60
	urls := make([]string, docs)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://migrate.example.edu/doc-%d.html", i)
		if _, err := nodes[0].Request(urls[i], 2048); err != nil {
			t.Fatal(err)
		}
	}

	joiner := startChaosNode(t, Config{
		ID: "m2", Scheme: core.EA{}, OriginAddr: origin.Addr(),
		Location: resolve.LocateHash, HashName: "m2",
	})
	joiner.SetPeers([]Peer{
		{ICP: nodes[0].ICPAddr(), HTTP: nodes[0].HTTPAddr(), Name: "m0"},
		{ICP: nodes[1].ICPAddr(), HTTP: nodes[1].HTTPAddr(), Name: "m1"},
	})
	joinerPeer := Peer{ICP: joiner.ICPAddr(), HTTP: joiner.HTTPAddr(), Name: "m2"}
	for _, n := range nodes {
		if err := n.AddPeer(joinerPeer); err != nil {
			t.Fatal(err)
		}
	}

	// The joiner's share under the grown ring must end up exactly there.
	grown, err := chash.New(0, "m0", "m1", "m2")
	if err != nil {
		t.Fatal(err)
	}
	var joinerOwned []string
	for _, u := range urls {
		if grown.Owner(u) == "m2" {
			joinerOwned = append(joinerOwned, u)
		}
	}
	if len(joinerOwned) == 0 {
		t.Fatal("test needs at least one document homed at the joiner")
	}
	waitFor(t, 5*time.Second, "migration to the joiner", func() bool {
		for _, u := range joinerOwned {
			if !joiner.Contains(u) {
				return false
			}
		}
		return true
	})

	// Single-copy invariant after the move, for every document.
	all := append(nodes, joiner)
	for _, u := range urls {
		if c := copiesAmong(u, all...); c > 1 {
			t.Fatalf("%s has %d copies after rebalance", u, c)
		}
	}
	// Accounting: every scanned document in exactly one bucket, and the
	// senders' transfers cover the joiner's share.
	transferred := 0
	for _, n := range nodes {
		rep, ok := n.LastMigration()
		if !ok {
			t.Fatalf("%s never ran a migration pass", n.ID())
		}
		if got := rep.Kept + rep.Transferred + rep.SkippedEA + rep.Refused + rep.Failed; got != rep.Scanned {
			t.Fatalf("%s accounting leak: %+v", n.ID(), rep)
		}
		if rep.Reason != "rebalance" || rep.Failed != 0 {
			t.Fatalf("%s migration report: %+v", n.ID(), rep)
		}
		transferred += rep.Transferred
	}
	if transferred < len(joinerOwned) {
		t.Fatalf("transferred %d docs, joiner owns %d", transferred, len(joinerOwned))
	}
}

// TestDrainHandoff: draining hands every resident copy to its owner on
// the ring without the drainer, the drainer keeps nothing new, and the
// accounting balances.
func TestDrainHandoff(t *testing.T) {
	checkGoroutines(t)
	origin := startOrigin(t)
	nodes := startHashGroup(t, origin, "d0", "d1", "d2")

	const docs = 45
	urls := make([]string, docs)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://drain.example.edu/doc-%d.html", i)
		if _, err := nodes[1].Request(urls[i], 1024); err != nil {
			t.Fatal(err)
		}
	}
	resident := nodes[0].Len()
	if resident == 0 {
		t.Fatal("test needs documents resident at the drainer")
	}

	rep := nodes[0].DrainHandoff()
	if !nodes[0].Draining() {
		t.Fatal("drain did not latch the draining state")
	}
	if got := rep.Kept + rep.Transferred + rep.SkippedEA + rep.Refused + rep.Failed; got != rep.Scanned || rep.Scanned != resident {
		t.Fatalf("drain accounting: %+v (resident %d)", rep, resident)
	}
	if rep.Reason != "drain" || rep.Transferred == 0 || rep.Refused != 0 || rep.Failed != 0 {
		t.Fatalf("drain report: %+v", rep)
	}
	if nodes[0].Len() != 0 {
		t.Fatalf("drainer still holds %d documents", nodes[0].Len())
	}
	// Every handed-off copy sits at its post-departure owner; never two
	// copies anywhere.
	shrunk, err := chash.New(0, "d1", "d2")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Node{"d1": nodes[1], "d2": nodes[2]}
	for _, u := range urls {
		if c := copiesAmong(u, nodes...); c > 1 {
			t.Fatalf("%s has %d copies after drain", u, c)
		}
		if home := byName[shrunk.Owner(u)]; !home.Contains(u) && copiesAmong(u, nodes...) != 0 {
			t.Fatalf("%s not at its post-drain home %s", u, shrunk.Owner(u))
		}
	}
	// A draining node refuses resolve-keeps and pushes from now on.
	url := urlWithOwners(t, shrunk, "d1")
	if stored, _, err := nodes[1].pushCopy(nodes[0].HTTPAddr(), cache.Document{URL: url, Size: 64}); err != nil || stored {
		t.Fatalf("draining node accepted a push (stored=%v, err=%v)", stored, err)
	}
	// Idempotent: a second drain scans an empty store.
	if rep := nodes[0].DrainHandoff(); rep.Scanned != 0 {
		t.Fatalf("second drain scanned %d", rep.Scanned)
	}
}

// TestPushAcceptance pins mayAcceptPush's ring rule: the receiver stores
// a pushed copy iff it sits within the first two raw ring owners.
func TestPushAcceptance(t *testing.T) {
	checkGoroutines(t)
	origin := startOrigin(t)
	nodes := startHashGroup(t, origin, "q0", "q1", "q2")
	ring, err := chash.New(0, "q0", "q1", "q2")
	if err != nil {
		t.Fatal(err)
	}

	// Owner chain q1,q2: q1 (owner) and q2 (second) accept, q0 refuses.
	url := urlWithOwners(t, ring, "q1", "q2")
	doc := cache.Document{URL: url, Size: 512}
	for i, want := range map[int]bool{1: true, 2: true, 0: false} {
		stored, _, err := nodes[(i+1)%3].pushCopy(nodes[i].HTTPAddr(), doc)
		if err != nil {
			t.Fatalf("push to %s: %v", nodes[i].ID(), err)
		}
		if stored != want {
			t.Fatalf("push to %s stored=%v, want %v", nodes[i].ID(), stored, want)
		}
		if nodes[i].Contains(url) != want {
			t.Fatalf("%s Contains=%v after push, want %v", nodes[i].ID(), nodes[i].Contains(url), want)
		}
		if want {
			// Clean up so the next acceptor starts empty.
			nodes[i].store.Remove(url)
		}
	}
}

// TestJoinWarmupRelaysWithoutStoring: inside its warmup window a node
// refuses resolve-keeps and front-door stores but accepts pushes; after
// the window it stores normally.
func TestJoinWarmupRelaysWithoutStoring(t *testing.T) {
	checkGoroutines(t)
	origin := startOrigin(t)
	n := startChaosNode(t, Config{
		ID: "w0", Scheme: core.EA{}, OriginAddr: origin.Addr(),
		Location: resolve.LocateHash, HashName: "w0",
		JoinWarmup: 300 * time.Millisecond,
	})
	url := "http://warm.example.edu/doc.html"
	res, err := n.Request(url, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss || res.Stored || n.Contains(url) {
		t.Fatalf("warming request = %+v (contains=%v), want un-stored miss", res, n.Contains(url))
	}
	// Pushes land even while warming (senders removed their copy first).
	helper := startChaosNode(t, Config{ID: "w1", Scheme: core.EA{}, Location: resolve.LocateHash, HashName: "w1"})
	if stored, _, err := helper.pushCopy(n.HTTPAddr(), cache.Document{URL: "http://warm.example.edu/pushed.html", Size: 64}); err != nil || !stored {
		t.Fatalf("warming node refused a push (stored=%v, err=%v)", stored, err)
	}
	waitFor(t, 2*time.Second, "warmup to end", func() bool { return !n.warming() })
	if _, err := n.Request(url, 1024); err != nil {
		t.Fatal(err)
	}
	if !n.Contains(url) {
		t.Fatal("post-warmup request did not store")
	}
}

// TestStaleRingRequesterDoesNotMintDuplicates: a responder asked to
// resolve by a requester with a different ring view relays the body but
// keeps nothing — the fingerprint mismatch is the evidence of staleness.
func TestStaleRingRequesterDoesNotMintDuplicates(t *testing.T) {
	checkGoroutines(t)
	origin := startOrigin(t)
	nodes := startHashGroup(t, origin, "s0", "s1")

	// s0 learns about a third member; s1 does not. Their fingerprints now
	// differ, so a resolve from s0 through s1 must not be kept at s1.
	if err := nodes[0].AddPeer(Peer{ICP: udpAddr(t, "127.0.0.1:19031"), HTTP: deadTCPAddr(t), Name: "s2"}); err != nil {
		t.Fatal(err)
	}
	ring, err := chash.New(0, "s0", "s1")
	if err != nil {
		t.Fatal(err)
	}
	// Homed at s1 under BOTH views that route there (s1 before s0), so
	// s0 resolves through s1 regardless of the skew.
	grown, err := chash.New(0, "s0", "s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	var url string
	for i := 0; ; i++ {
		u := fmt.Sprintf("http://stale.example.edu/doc-%d.html", i)
		if ring.Owner(u) == "s1" && grown.Owner(u) == "s1" {
			url = u
			break
		}
	}
	res, err := nodes[0].Request(url, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss || res.Stored {
		t.Fatalf("skewed resolve = %+v, want un-stored miss", res)
	}
	if nodes[1].Contains(url) {
		t.Fatal("stale-view exchange minted a copy at the responder")
	}
	// Matching views: the same resolve is kept.
	if err := nodes[1].AddPeer(Peer{ICP: udpAddr(t, "127.0.0.1:19031"), HTTP: nodes[0].peerList()[1].HTTP, Name: "s2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].Request(url, 1024); err != nil {
		t.Fatal(err)
	}
	if !nodes[1].Contains(url) {
		t.Fatal("matching-view resolve was not kept at the home")
	}
}

// TestAdminMembershipAPI drives a join → leave → drain cycle through the
// HTTP handlers the admin surface mounts.
func TestAdminMembershipAPI(t *testing.T) {
	checkGoroutines(t)
	origin := startOrigin(t)
	n := startChaosNode(t, Config{
		ID: "a0", Scheme: core.EA{}, OriginAddr: origin.Addr(),
		Location: resolve.LocateHash, HashName: "a0",
	})
	mux := http.NewServeMux()
	for pattern, h := range n.AdminRoutes() {
		mux.Handle(pattern, h)
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	t.Cleanup(http.DefaultClient.CloseIdleConnections)

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [4096]byte
		k, _ := resp.Body.Read(buf[:])
		return resp, buf[:k]
	}

	// Join.
	resp, body := post("/admin/peers/join", `{"icp":"127.0.0.1:19041","http":"127.0.0.1:19141","name":"a1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d %s", resp.StatusCode, body)
	}
	var view membershipView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Self != "a0" || view.Epoch != 1 || len(view.Members) != 1 || view.Members[0].Name != "a1" {
		t.Fatalf("join view: %+v", view)
	}
	// Rejected join: duplicate name.
	if resp, body = post("/admin/peers/join", `{"icp":"127.0.0.1:19042","http":"127.0.0.1:19142","name":"a1"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate join: %d %s", resp.StatusCode, body)
	}
	// GET table.
	getResp, err := http.Get(srv.URL + "/admin/peers")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /admin/peers: %d", getResp.StatusCode)
	}
	// Method guard.
	mguard, err := http.Get(srv.URL + "/admin/peers/join")
	if err != nil {
		t.Fatal(err)
	}
	mguard.Body.Close()
	if mguard.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET join: %d", mguard.StatusCode)
	}
	// Leave by name; second leave 404s.
	if resp, body = post("/admin/peers/leave", `{"peer":"a1"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: %d %s", resp.StatusCode, body)
	}
	if resp, _ = post("/admin/peers/leave", `{"peer":"a1"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double leave: %d", resp.StatusCode)
	}
	// Drain returns the accounting report and latches the state.
	resp, body = post("/admin/peers/drain", ``)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d %s", resp.StatusCode, body)
	}
	var rep MigrationReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Reason != "drain" || !n.Draining() {
		t.Fatalf("drain report %+v, draining=%v", rep, n.Draining())
	}
}
