package netnode

import (
	"sync"
	"testing"
	"time"

	"eacache/internal/core"
	"eacache/internal/metrics"
)

// startChild builds a node whose misses resolve through parent.
func startChild(t *testing.T, id string, capacity int64, scheme core.Scheme, parent *Node) *Node {
	t.Helper()
	n, err := New(Config{
		ID:         id,
		ICPAddr:    "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Store:      newStore(t, capacity),
		Scheme:     scheme,
		ParentAddr: parent.HTTPAddr(),
		ICPTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestHierarchyResolveOverWire(t *testing.T) {
	origin := startOrigin(t)
	parent := startNode(t, "parent", 1<<20, core.AdHoc{}, origin.Addr())
	child := startChild(t, "child", 1<<20, core.AdHoc{}, parent)

	res, err := child.Request("http://h.example.edu/a.html", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss || res.Size != 2048 {
		t.Fatalf("first request = %+v, want 2048-byte miss via parent", res)
	}
	// Ad-hoc: both levels keep copies.
	if !child.Contains("http://h.example.edu/a.html") {
		t.Fatal("child did not store")
	}
	if !parent.Contains("http://h.example.edu/a.html") {
		t.Fatal("parent did not store")
	}
	if origin.Fetches() != 1 {
		t.Fatalf("origin fetches = %d", origin.Fetches())
	}
}

func TestHierarchyParentCacheHitOverWire(t *testing.T) {
	origin := startOrigin(t)
	parent := startNode(t, "parent", 1<<20, core.AdHoc{}, origin.Addr())
	childA := startChild(t, "a", 1<<20, core.AdHoc{}, parent)
	childB := startChild(t, "b", 1<<20, core.AdHoc{}, parent)

	// Child A's miss seeds the parent.
	if _, err := childA.Request("http://h/x", 1000); err != nil {
		t.Fatal(err)
	}
	// Child B (no ICP wiring to A or the parent) resolves through the
	// parent, whose cached copy makes this a group hit.
	res, err := childB.Request("http://h/x", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit {
		t.Fatalf("res = %+v, want remote hit from parent's cache", res)
	}
	if res.Responder != parent.HTTPAddr() {
		t.Fatalf("responder = %q", res.Responder)
	}
	if origin.Fetches() != 1 {
		t.Fatalf("origin fetches = %d, want 1", origin.Fetches())
	}
}

func TestHierarchyEAColdTieOverWire(t *testing.T) {
	origin := startOrigin(t)
	parent := startNode(t, "parent", 1<<20, core.EA{}, origin.Addr())
	child := startChild(t, "child", 1<<20, core.EA{}, parent)

	res, err := child.Request("http://h/y", 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss || !res.Stored {
		t.Fatalf("res = %+v, want stored miss (tie goes to the child)", res)
	}
	if parent.Contains("http://h/y") {
		t.Fatal("parent stored on a cold tie (strict §3.3 rule)")
	}
	if !child.Contains("http://h/y") {
		t.Fatal("nobody stored the resolved document")
	}
}

func TestThreeLevelHierarchyOverWire(t *testing.T) {
	origin := startOrigin(t)
	root := startNode(t, "root", 1<<20, core.AdHoc{}, origin.Addr())
	mid := startChild(t, "mid", 1<<20, core.AdHoc{}, root)
	leaf := startChild(t, "leaf", 1<<20, core.AdHoc{}, mid)

	res, err := leaf.Request("http://h/deep", 800)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss {
		t.Fatalf("res = %+v", res)
	}
	for _, n := range []*Node{root, mid, leaf} {
		if !n.Contains("http://h/deep") {
			t.Fatalf("%s missing the document", n.ID())
		}
	}
	// A second leaf under mid sees the mid's copy as a group hit, with
	// the source tag propagated down the chain.
	leaf2 := startChild(t, "leaf2", 1<<20, core.AdHoc{}, mid)
	res, err = leaf2.Request("http://h/deep", 800)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit {
		t.Fatalf("res = %+v, want remote hit via mid", res)
	}
	if origin.Fetches() != 1 {
		t.Fatalf("origin fetches = %d", origin.Fetches())
	}
}

// TestConcurrentCrossRequests exercises the locking design: two nodes
// requesting from each other simultaneously must not deadlock (the node
// never holds its own lock across network calls).
func TestConcurrentCrossRequests(t *testing.T) {
	origin := startOrigin(t)
	a := startNode(t, "a", 1<<20, core.AdHoc{}, origin.Addr())
	b := startNode(t, "b", 1<<20, core.AdHoc{}, origin.Addr())
	mesh(a, b)

	// Seed each node with documents the other will want.
	if _, err := a.Request("http://cross/a-doc", 700); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request("http://cross/b-doc", 700); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 20; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := a.Request("http://cross/b-doc", 700); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := b.Request("http://cross/a-doc", 700); err != nil {
				errs <- err
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("cross requests deadlocked")
	}
	close(errs)
	for err := range errs {
		t.Fatalf("cross request failed: %v", err)
	}
}
