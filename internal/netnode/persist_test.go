package netnode

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"eacache/internal/core"
	"eacache/internal/metrics"
)

// startPersistentNode starts a node journaling into dir. The caller closes
// it; no t.Cleanup, because these tests restart nodes on the same dir.
func startPersistentNode(t *testing.T, id, dir, origin string) *Node {
	t.Helper()
	n, err := New(Config{
		ID:               id,
		ICPAddr:          "127.0.0.1:0",
		HTTPAddr:         "127.0.0.1:0",
		Store:            newStore(t, 1<<20),
		Scheme:           core.AdHoc{},
		OriginAddr:       origin,
		ICPTimeout:       500 * time.Millisecond,
		DataDir:          dir,
		SnapshotInterval: time.Hour, // checkpoints come from Drain, not the ticker
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPersistenceConfigValidation(t *testing.T) {
	base := Config{
		ICPAddr:  "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
		Store:    newStore(t, 100),
		Scheme:   core.AdHoc{},
	}
	bad := base
	bad.SnapshotInterval = -time.Second
	if _, err := New(bad); err == nil {
		t.Fatal("negative SnapshotInterval accepted")
	}
	bad = base
	bad.SnapshotInterval = time.Second
	if _, err := New(bad); err == nil {
		t.Fatal("SnapshotInterval without DataDir accepted")
	}
}

// TestWarmRestartOverWire is the tentpole end-to-end check: a node serves
// traffic, drains, and a new process (new Node, fresh store, same data
// dir) comes back remembering every document — the re-request is a local
// hit that never touches the origin.
func TestWarmRestartOverWire(t *testing.T) {
	origin := startOrigin(t)
	dir := t.TempDir()

	n1 := startPersistentNode(t, "p0", dir, origin.Addr())
	urls := make([]string, 8)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://warm.example.edu/doc%d", i)
		if _, err := n1.Request(urls[i], 1000); err != nil {
			t.Fatal(err)
		}
	}
	// A second round of hits so recovered hit counts are > 1.
	for _, u := range urls {
		res, err := n1.Request(u, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != metrics.LocalHit {
			t.Fatalf("pre-drain request = %+v", res)
		}
	}
	fetchesBefore := origin.Fetches()
	if err := n1.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.dat")); err != nil {
		t.Fatalf("drain left no snapshot: %v", err)
	}

	n2 := startPersistentNode(t, "p0", dir, origin.Addr())
	defer func() { _ = n2.Close() }()
	rep, ok := n2.Recovery()
	if !ok {
		t.Fatal("persistent node reports no recovery")
	}
	if rep.Restored.Entries != len(urls) || rep.Restored.Skipped != 0 {
		t.Fatalf("recovery = %+v, want %d entries", rep.Restored, len(urls))
	}
	if !rep.SnapshotLoaded || rep.Discarded != "" {
		t.Fatalf("recovery report = %+v", rep.Report)
	}
	for _, u := range urls {
		if !n2.Contains(u) {
			t.Fatalf("restarted node lost %s", u)
		}
		res, err := n2.Request(u, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != metrics.LocalHit {
			t.Fatalf("post-restart request = %+v", res)
		}
	}
	if origin.Fetches() != fetchesBefore {
		t.Fatalf("warm restart refetched from origin: %d -> %d", fetchesBefore, origin.Fetches())
	}
}

// TestKilledNodeRecoversFromJournal skips the graceful drain: the first
// node's servers are torn down without a checkpoint (only the journal made
// it to disk, as after kill -9) and the successor must still recover the
// cache from the journal alone.
func TestKilledNodeRecoversFromJournal(t *testing.T) {
	origin := startOrigin(t)
	dir := t.TempDir()

	n1 := startPersistentNode(t, "k0", dir, origin.Addr())
	url := "http://kill.example.edu/doc"
	if _, err := n1.Request(url, 2000); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: close the sockets so the port is free, but bypass
	// the persistence checkpoint a graceful shutdown would write.
	_ = n1.icpServer.Close()
	_ = n1.httpLn.Close()
	// The journal file was written synchronously by the event sink; the
	// abandoned Persister's state is exactly what a killed process leaves.

	n2 := startPersistentNode(t, "k0", dir, origin.Addr())
	defer func() { _ = n2.Close() }()
	rep, ok := n2.Recovery()
	if !ok || rep.SnapshotLoaded || rep.JournalRecords == 0 {
		t.Fatalf("recovery = %+v, ok=%v; want journal-only", rep, ok)
	}
	if !n2.Contains(url) {
		t.Fatal("journal-only restart lost the document")
	}
	res, err := n2.Request(url, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.LocalHit {
		t.Fatalf("post-crash request = %+v", res)
	}
	// n1 is deliberately never Closed: a graceful close would checkpoint
	// into the directory n2 now owns. The leaked handles die with the
	// test binary, exactly like the process they stand in for.
}

// TestCloseConcurrentWithRequests is the Close-race regression test: many
// in-flight Requests while several goroutines Close the node. Must not
// panic, double-close, or deadlock, and every Close call returns the same
// result.
func TestCloseConcurrentWithRequests(t *testing.T) {
	origin := startOrigin(t)
	n := startNode(t, "race", 1<<20, core.AdHoc{}, origin.Addr())

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				// Errors are expected once the node is closed; the point
				// is that nothing panics or hangs.
				_, _ = n.Request(fmt.Sprintf("http://race.example.edu/d%d-%d", g, i), 500)
			}
		}(g)
	}
	errs := make(chan error, 3)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			time.Sleep(time.Millisecond)
			errs <- n.Close()
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	var first error
	i := 0
	for err := range errs {
		if i == 0 {
			first = err
		} else if err != first {
			t.Fatalf("concurrent Close results differ: %v vs %v", first, err)
		}
		i++
	}
}

// TestDrainWaitsForInFlight verifies the graceful path: a Drain issued
// while a request is in flight still lets it finish inside the deadline.
func TestDrainWaitsForInFlight(t *testing.T) {
	origin := startOrigin(t)
	n := startNode(t, "drain", 1<<20, core.AdHoc{}, origin.Addr())

	done := make(chan error, 1)
	go func() {
		_, err := n.Request("http://drain.example.edu/doc", 1000)
		done <- err
	}()
	// Give the request a moment to enter the node, then drain.
	time.Sleep(5 * time.Millisecond)
	if err := n.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		// Finished either way: served before the drain cut in, or failed
		// cleanly because the listener was already gone. Both are fine —
		// the test is that nothing hangs past the deadline.
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight request hung across a drain")
	}
}
