package netnode

import (
	"fmt"
	"testing"
	"time"

	"eacache/internal/core"
	"eacache/internal/metrics"
)

// startTieredNode starts a node with a small memory tier backed by a blob
// disk tier, journaling into dataDir. DiskDemote is "always" so every
// memory victim spills deterministically. The caller closes it; no
// t.Cleanup, because these tests restart nodes on the same dirs.
func startTieredNode(t *testing.T, id, dataDir, diskDir, origin string, memCap, diskCap int64) *Node {
	t.Helper()
	n, err := New(Config{
		ID:               id,
		ICPAddr:          "127.0.0.1:0",
		HTTPAddr:         "127.0.0.1:0",
		Store:            newStore(t, memCap),
		Scheme:           core.AdHoc{},
		OriginAddr:       origin,
		ICPTimeout:       500 * time.Millisecond,
		DataDir:          dataDir,
		SnapshotInterval: time.Hour,
		DiskDir:          diskDir,
		DiskCapacity:     diskCap,
		DiskDemote:       "always",
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTierConfigValidation(t *testing.T) {
	origin := startOrigin(t)
	base := Config{
		ICPAddr:    "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Store:      newStore(t, 1000),
		Scheme:     core.AdHoc{},
		OriginAddr: origin.Addr(),
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"capacity without dir", func(c *Config) { c.DiskCapacity = 1 << 20 }},
		{"dir without capacity", func(c *Config) { c.DiskDir = t.TempDir() }},
		{"negative capacity", func(c *Config) { c.DiskDir = t.TempDir(); c.DiskCapacity = -1 }},
		{"demote without dir", func(c *Config) { c.DiskDemote = "always" }},
		{"unknown demote policy", func(c *Config) {
			c.DiskDir = t.TempDir()
			c.DiskCapacity = 1 << 20
			c.DiskDemote = "sometimes"
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if n, err := New(cfg); err == nil {
			_ = n.Close()
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

// TestTierPromoteOverWire drives more documents through a node than its
// memory tier holds, so victims demote to disk, then re-requests a
// demoted document: the disk hit must re-promote and serve locally
// without touching the origin.
func TestTierPromoteOverWire(t *testing.T) {
	origin := startOrigin(t)
	n := startTieredNode(t, "tp0", t.TempDir(), t.TempDir(), origin.Addr(), 4000, 1<<20)
	defer func() { _ = n.Close() }()

	urls := make([]string, 8)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://tier.example.edu/doc%d", i)
		if _, err := n.Request(urls[i], 1000); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.store.TierCounters().Demotions; got < 4 {
		t.Fatalf("demotions = %d, want >= 4", got)
	}
	if n.store.DiskLen() == 0 {
		t.Fatal("no documents on disk after overflow")
	}
	// The first document is the coldest: it must be disk-resident now.
	if n.store.Contains(urls[0]) != true {
		t.Fatalf("%s not resident in either tier", urls[0])
	}
	fetches := origin.Fetches()
	res, err := n.Request(urls[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.LocalHit {
		t.Fatalf("disk-resident request = %+v, want local hit", res)
	}
	if origin.Fetches() != fetches {
		t.Fatalf("disk hit refetched from origin: %d -> %d", fetches, origin.Fetches())
	}
	if got := n.store.TierCounters().Promotions; got == 0 {
		t.Fatal("disk hit did not count a promotion")
	}
	if got := n.store.TierCounters().ChecksumFailures; got != 0 {
		t.Fatalf("checksum failures = %d", got)
	}
}

// TestTierCloseFlushesDemotions is the drain/close-ordering check: a
// graceful Close must flush in-flight tier demotions (Quiesce) before the
// journal's final rotate, so the restart snapshot and the blob index
// agree on every disk resident.
func TestTierCloseFlushesDemotions(t *testing.T) {
	origin := startOrigin(t)
	dataDir, diskDir := t.TempDir(), t.TempDir()

	n1 := startTieredNode(t, "tc0", dataDir, diskDir, origin.Addr(), 4000, 1<<20)
	urls := make([]string, 16)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://tierclose.example.edu/doc%d", i)
		if _, err := n1.Request(urls[i], 1000); err != nil {
			t.Fatal(err)
		}
	}
	diskLen, memLen := n1.store.DiskLen(), n1.store.MemLen()
	if diskLen == 0 {
		t.Fatal("workload produced no demotions")
	}
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}

	n2 := startTieredNode(t, "tc0", dataDir, diskDir, origin.Addr(), 4000, 1<<20)
	defer func() { _ = n2.Close() }()
	rep, ok := n2.Recovery()
	if !ok || !rep.SnapshotLoaded {
		t.Fatalf("recovery = %+v, ok=%v; want snapshot-led", rep, ok)
	}
	if rep.Restored.DiskRestored != diskLen || rep.Restored.DiskLost != 0 {
		t.Fatalf("disk recovery = %d restored / %d lost, want %d / 0",
			rep.Restored.DiskRestored, rep.Restored.DiskLost, diskLen)
	}
	if n2.store.DiskLen() != diskLen || n2.store.MemLen() != memLen {
		t.Fatalf("restored occupancy = %d mem / %d disk, want %d / %d",
			n2.store.MemLen(), n2.store.DiskLen(), memLen, diskLen)
	}
	fetches := origin.Fetches()
	for _, u := range urls {
		if !n2.Contains(u) {
			t.Fatalf("restart lost %s", u)
		}
	}
	res, err := n2.Request(urls[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.LocalHit {
		t.Fatalf("post-restart disk request = %+v", res)
	}
	if origin.Fetches() != fetches {
		t.Fatal("warm tier restart refetched from origin")
	}
}

// TestTierKill9Recovery is the tentpole end-to-end check: a node holds
// over 10x its memory capacity on disk, dies without any checkpoint
// (kill -9: the journal and the blob index are all that survive), and a
// successor on the same directories recovers every document with every
// blob checksum intact.
func TestTierKill9Recovery(t *testing.T) {
	origin := startOrigin(t)
	dataDir, diskDir := t.TempDir(), t.TempDir()
	const memCap, docSize, docs = 4000, 1000, 64

	n1 := startTieredNode(t, "tk0", dataDir, diskDir, origin.Addr(), memCap, 1<<20)
	urls := make([]string, docs)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://tierkill.example.edu/doc%d", i)
		if _, err := n1.Request(urls[i], docSize); err != nil {
			t.Fatal(err)
		}
	}
	diskLen := n1.store.DiskLen()
	if used := n1.store.DiskUsed(); used < 10*memCap {
		t.Fatalf("disk tier holds %d bytes, want >= 10x memory capacity (%d)", used, 10*memCap)
	}
	// Simulated kill -9: tear down the sockets so the ports are free, but
	// skip every flush a graceful shutdown would run — no Quiesce, no
	// final checkpoint, no blob-index fsync. n1 is deliberately never
	// Closed (see TestKilledNodeRecoversFromJournal).
	_ = n1.icpServer.Close()
	_ = n1.httpLn.Close()

	n2 := startTieredNode(t, "tk0", dataDir, diskDir, origin.Addr(), memCap, 1<<20)
	defer func() { _ = n2.Close() }()
	rep, ok := n2.Recovery()
	if !ok || rep.SnapshotLoaded || rep.JournalRecords == 0 {
		t.Fatalf("recovery = %+v, ok=%v; want journal-only", rep, ok)
	}
	if rep.Restored.DiskLost != 0 {
		t.Fatalf("kill -9 lost %d disk residents", rep.Restored.DiskLost)
	}
	if n2.store.DiskLen() != diskLen {
		t.Fatalf("recovered disk tier = %d documents, want %d", n2.store.DiskLen(), diskLen)
	}
	if used := n2.store.DiskUsed(); used < 10*memCap {
		t.Fatalf("recovered disk tier holds %d bytes, want >= 10x memory capacity", used)
	}
	// Every blob must read back byte-for-byte against its checksum.
	vrep := n2.blobStore.VerifyAll()
	if vrep.Failed != 0 {
		t.Fatalf("post-crash verification failed %d blobs: %v", vrep.Failed, vrep.FailedURLs)
	}
	fetches := origin.Fetches()
	for _, u := range urls {
		if !n2.Contains(u) {
			t.Fatalf("kill -9 restart lost %s", u)
		}
	}
	// Serve one cold (disk-resident) and one hot document; both local.
	for _, u := range []string{urls[0], urls[docs-1]} {
		res, err := n2.Request(u, docSize)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != metrics.LocalHit {
			t.Fatalf("post-crash request %s = %+v", u, res)
		}
	}
	if origin.Fetches() != fetches {
		t.Fatal("post-crash restart refetched from origin")
	}
}
