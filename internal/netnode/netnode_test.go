package netnode

import (
	"fmt"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/metrics"
)

func newStore(t *testing.T, capacity int64) *cache.Store {
	t.Helper()
	s, err := cache.New(cache.Config{Capacity: capacity, ExpirationHorizon: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func startOrigin(t *testing.T) *OriginServer {
	t.Helper()
	o, err := NewOriginServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = o.Close() })
	return o
}

func startNode(t *testing.T, id string, capacity int64, scheme core.Scheme, origin string) *Node {
	t.Helper()
	n, err := New(Config{
		ID:         id,
		ICPAddr:    "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Store:      newStore(t, capacity),
		Scheme:     scheme,
		OriginAddr: origin,
		ICPTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

// mesh wires nodes as full peers.
func mesh(nodes ...*Node) {
	for i, n := range nodes {
		var peers []Peer
		for j, other := range nodes {
			if i != j {
				peers = append(peers, Peer{ICP: other.ICPAddr(), HTTP: other.HTTPAddr()})
			}
		}
		n.SetPeers(peers)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Scheme: core.AdHoc{}}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New(Config{Store: newStore(t, 100)}); err == nil {
		t.Fatal("nil scheme accepted")
	}
}

func TestMissThenLocalHitOverWire(t *testing.T) {
	origin := startOrigin(t)
	n := startNode(t, "n0", 1<<20, core.AdHoc{}, origin.Addr())

	res, err := n.Request("http://d.example.edu/a.html", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss || res.Size != 2048 || !res.Stored {
		t.Fatalf("first request = %+v", res)
	}
	if origin.Fetches() != 1 {
		t.Fatalf("origin fetches = %d", origin.Fetches())
	}

	res, err = n.Request("http://d.example.edu/a.html", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.LocalHit {
		t.Fatalf("second request = %+v", res)
	}
	if origin.Fetches() != 1 {
		t.Fatal("local hit went to origin")
	}
}

func TestRemoteHitOverWire(t *testing.T) {
	origin := startOrigin(t)
	a := startNode(t, "a", 1<<20, core.AdHoc{}, origin.Addr())
	b := startNode(t, "b", 1<<20, core.AdHoc{}, origin.Addr())
	mesh(a, b)

	if _, err := a.Request("http://d.example.edu/x", 1000); err != nil {
		t.Fatal(err)
	}
	res, err := b.Request("http://d.example.edu/x", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit {
		t.Fatalf("res = %+v, want remote hit", res)
	}
	if res.Responder != a.HTTPAddr() {
		t.Fatalf("responder = %q, want %q", res.Responder, a.HTTPAddr())
	}
	// Ad-hoc: b stored a copy; no extra origin fetch happened.
	if !b.Contains("http://d.example.edu/x") {
		t.Fatal("requester did not store under ad-hoc")
	}
	if origin.Fetches() != 1 {
		t.Fatalf("origin fetches = %d, want 1", origin.Fetches())
	}
}

func TestEATieNoReplicationOverWire(t *testing.T) {
	origin := startOrigin(t)
	a := startNode(t, "a", 1<<20, core.EA{}, origin.Addr())
	b := startNode(t, "b", 1<<20, core.EA{}, origin.Addr())
	mesh(a, b)

	if _, err := a.Request("http://d.example.edu/x", 1000); err != nil {
		t.Fatal(err)
	}
	res, err := b.Request("http://d.example.edu/x", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit || res.Stored {
		t.Fatalf("res = %+v, want unstored remote hit (cold tie)", res)
	}
	if b.Contains("http://d.example.edu/x") {
		t.Fatal("EA replicated on a cold tie")
	}
}

func TestMissWithoutOriginFails(t *testing.T) {
	n := startNode(t, "n", 1<<20, core.AdHoc{}, "")
	if _, err := n.Request("http://nowhere/", 100); err == nil {
		t.Fatal("miss without origin succeeded")
	}
}

func TestGroupWorkloadOverWire(t *testing.T) {
	origin := startOrigin(t)
	scheme := core.EA{}
	nodes := []*Node{
		startNode(t, "n0", 64<<10, scheme, origin.Addr()),
		startNode(t, "n1", 64<<10, scheme, origin.Addr()),
		startNode(t, "n2", 64<<10, scheme, origin.Addr()),
	}
	mesh(nodes...)

	var counters metrics.Counters
	for i := 0; i < 300; i++ {
		node := nodes[i%len(nodes)]
		url := fmt.Sprintf("http://w.example.edu/doc%02d", i%20)
		res, err := node.Request(url, 1500)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		counters.Record(res.Outcome, res.Size)
	}
	snap := counters.Snapshot()
	if snap.Requests != 300 {
		t.Fatalf("requests = %d", snap.Requests)
	}
	if snap.Hits() == 0 {
		t.Fatal("no hits across a 20-doc working set")
	}
	if snap.RemoteHits == 0 {
		t.Fatal("no cooperative (remote) hits over the wire")
	}
	if origin.Fetches() == 0 || origin.Fetches() > snap.Misses {
		t.Fatalf("origin fetches = %d, misses = %d", origin.Fetches(), snap.Misses)
	}
}

func TestCloseIdempotent(t *testing.T) {
	origin := startOrigin(t)
	n := startNode(t, "n", 1<<20, core.AdHoc{}, origin.Addr())
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := origin.Close(); err != nil {
		t.Fatal(err)
	}
	if err := origin.Close(); err != nil {
		t.Fatalf("second origin close: %v", err)
	}
}

func TestExpirationAgeExposed(t *testing.T) {
	origin := startOrigin(t)
	n := startNode(t, "n", 4<<10, core.EA{}, origin.Addr())
	if n.ExpirationAge() != cache.NoContention {
		t.Fatal("cold node should report NoContention")
	}
	// Overflow the 4KB cache to force evictions.
	for i := 0; i < 8; i++ {
		if _, err := n.Request(fmt.Sprintf("http://w/doc%d", i), 1024); err != nil {
			t.Fatal(err)
		}
	}
	if n.ExpirationAge() == cache.NoContention {
		t.Fatal("churned node still reports NoContention")
	}
}
