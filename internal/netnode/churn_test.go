package netnode

// The churn gate: a live hash group under continuous traffic while
// membership changes out from under it — a node is killed and ejected,
// a fresh node joins and takes its ring share, and the corpse revives
// on its old addresses and is readmitted. At every settled intermediate
// step the single-copy invariant must hold across the live members, no
// client request may fail, and the migration accounting must balance.
// `make churn-smoke` runs this under -race -short; the -v log carries
// the per-step accounting as the CI artifact.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eacache/internal/core"
	"eacache/internal/health"
	"eacache/internal/resolve"
)

// churnConfig sizes the scenario: -short (the CI smoke) runs the same
// transitions over a smaller catalogue instead of skipping.
type churnConfig struct {
	docs     int
	interval time.Duration
}

func churnSize() churnConfig {
	if testing.Short() {
		return churnConfig{docs: 30, interval: 2 * time.Millisecond}
	}
	return churnConfig{docs: 80, interval: time.Millisecond}
}

// startChurnNode starts one hash node with the fast ejection/readmission
// knobs the scenario runs under. Empty addrs mean "pick a port".
func startChurnNode(t *testing.T, origin *OriginServer, name, icpAddr, httpAddr string) *Node {
	t.Helper()
	return startChaosNode(t, Config{
		ID: name, ICPAddr: icpAddr, HTTPAddr: httpAddr,
		Scheme: core.EA{}, OriginAddr: origin.Addr(),
		Location: resolve.LocateHash, HashName: name,
		Health:       health.Config{DeadAfter: 1, ProbeBase: time.Minute},
		EjectAfter:   50 * time.Millisecond,
		ReadmitProbe: 25 * time.Millisecond,
	})
}

// waitSettled waits until a node has published epoch work and finished
// the migration pass for it: the latest report matches the current
// epoch and was not aborted by a newer one.
func waitSettled(t *testing.T, n *Node, what string) MigrationReport {
	t.Helper()
	var rep MigrationReport
	waitFor(t, 5*time.Second, what, func() bool {
		r, ok := n.LastMigration()
		if !ok || r.Aborted || r.Epoch != n.Epoch() {
			return false
		}
		rep = r
		return true
	})
	if got := rep.Kept + rep.Transferred + rep.SkippedEA + rep.Refused + rep.Failed; got != rep.Scanned {
		t.Fatalf("%s: accounting leak at %s: %+v", n.ID(), what, rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("%s: failed transfers at %s: %+v", n.ID(), what, rep)
	}
	t.Logf("%s migration after %s: %+v", n.ID(), what, rep)
	return rep
}

// assertSingleCopy checks the hash-mode placement invariant over the
// current live membership: no document has more than one copy.
func assertSingleCopy(t *testing.T, step string, urls []string, live ...*Node) {
	t.Helper()
	for _, u := range urls {
		if c := copiesAmong(u, live...); c > 1 {
			t.Fatalf("%s: %s has %d copies", step, u, c)
		}
	}
}

// TestChaosChurnKillJoinRevive is the full kill-and-join-under-traffic
// scenario the elastic-membership work must survive.
func TestChaosChurnKillJoinRevive(t *testing.T) {
	checkGoroutines(t)
	size := churnSize()
	origin := startOrigin(t)

	names := []string{"c0", "c1", "c2"}
	nodes := make([]*Node, len(names))
	for i, name := range names {
		nodes[i] = startChurnNode(t, origin, name, "", "")
	}
	meshHash(nodes, names)

	urls := make([]string, size.docs)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://churn.example.edu/doc-%d.html", i)
	}

	// Continuous client traffic through the two nodes that stay up for
	// the whole test (c1 is the victim). Any request error fails the
	// gate: clients must never see churn.
	entries := []*Node{nodes[0], nodes[2]}
	var (
		trafficWG   sync.WaitGroup
		stopTraffic = make(chan struct{})
		requests    atomic.Int64
		errCount    atomic.Int64
		errOnce     sync.Once
		firstErr    error
	)
	trafficWG.Add(1)
	go func() {
		defer trafficWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopTraffic:
				return
			default:
			}
			url := urls[i%len(urls)]
			if _, err := entries[i%len(entries)].Request(url, 2048); err != nil {
				errCount.Add(1)
				errOnce.Do(func() { firstErr = fmt.Errorf("request %s: %w", url, err) })
			}
			requests.Add(1)
			time.Sleep(size.interval)
		}
	}()
	stop := func() {
		close(stopTraffic)
		trafficWG.Wait()
	}
	stopped := false
	defer func() {
		if !stopped {
			stop()
		}
	}()

	// Warm the group so the kill has resident state to orphan.
	waitFor(t, 10*time.Second, "warmup traffic", func() bool {
		return requests.Load() > int64(2*size.docs)
	})

	// Step 1 — kill c1. The survivors' breakers see the corpse, the
	// sweeper ejects it, and the rebalance pass re-homes its share.
	victimICP := nodes[1].ICPAddr().String()
	victimHTTP := nodes[1].HTTPAddr()
	if err := nodes[1].Close(); err != nil {
		t.Fatal(err)
	}
	survivors := []*Node{nodes[0], nodes[2]}
	for _, n := range survivors {
		n := n
		waitFor(t, 5*time.Second, "ejection of c1 at "+n.ID(), func() bool {
			for _, m := range n.Members() {
				if m.Name == "c1" && m.Ejected {
					return true
				}
			}
			return false
		})
	}
	for _, n := range survivors {
		waitSettled(t, n, "ejection")
	}
	assertSingleCopy(t, "after ejection", urls, survivors...)

	// Step 2 — runtime join of c3 with the current live view; the
	// survivors hand over its ring share.
	joiner := startChurnNode(t, origin, "c3", "", "")
	joiner.SetPeers([]Peer{
		{ICP: nodes[0].ICPAddr(), HTTP: nodes[0].HTTPAddr(), Name: "c0"},
		{ICP: nodes[2].ICPAddr(), HTTP: nodes[2].HTTPAddr(), Name: "c2"},
	})
	joinerPeer := Peer{ICP: joiner.ICPAddr(), HTTP: joiner.HTTPAddr(), Name: "c3"}
	for _, n := range survivors {
		if err := n.AddPeer(joinerPeer); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range survivors {
		waitSettled(t, n, "join of c3")
	}
	live := []*Node{nodes[0], nodes[2], joiner}
	assertSingleCopy(t, "after join", urls, live...)

	// Step 3 — revive the victim on its old addresses. The survivors'
	// readmission probes find the fresh listener and re-add it without
	// operator action; the joiner (which never knew c1) learns it by an
	// explicit join, and the revived node gets the current view.
	revived := startChurnNode(t, origin, "c1", victimICP, victimHTTP)
	revived.SetPeers([]Peer{
		{ICP: nodes[0].ICPAddr(), HTTP: nodes[0].HTTPAddr(), Name: "c0"},
		{ICP: nodes[2].ICPAddr(), HTTP: nodes[2].HTTPAddr(), Name: "c2"},
		{ICP: joiner.ICPAddr(), HTTP: joiner.HTTPAddr(), Name: "c3"},
	})
	if err := joiner.AddPeer(Peer{ICP: revived.ICPAddr(), HTTP: revived.HTTPAddr(), Name: "c1"}); err != nil {
		t.Fatal(err)
	}
	for _, n := range survivors {
		n := n
		waitFor(t, 5*time.Second, "readmission of c1 at "+n.ID(), func() bool {
			for _, m := range n.Members() {
				if m.Name == "c1" && !m.Ejected {
					return true
				}
			}
			return false
		})
		if rb := n.Robustness(); rb.Ejections < 1 || rb.Readmissions < 1 {
			t.Fatalf("%s: ejections=%d readmissions=%d, want >=1 each", n.ID(), rb.Ejections, rb.Readmissions)
		}
	}
	live = []*Node{nodes[0], nodes[2], joiner, revived}
	for _, n := range []*Node{nodes[0], nodes[2], joiner} {
		waitSettled(t, n, "readmission of c1")
	}
	assertSingleCopy(t, "after readmission", urls, live...)

	stop()
	stopped = true

	// The gate: clients never saw the churn.
	if n := errCount.Load(); n > 0 {
		t.Fatalf("%d of %d requests failed during churn; first: %v", n, requests.Load(), firstErr)
	}
	t.Logf("churn complete: %d requests, 0 errors", requests.Load())

	// No lost documents: every URL still resolves through an entry node.
	for _, u := range urls {
		if _, err := nodes[0].Request(u, 2048); err != nil {
			t.Fatalf("document lost after churn: %s: %v", u, err)
		}
	}
	assertSingleCopy(t, "final", urls, live...)
}
