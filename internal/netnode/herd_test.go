package netnode

// Thundering-herd tests: many concurrent requesters hitting one missing
// URL on a live node must collapse into single-flight leader epochs —
// exactly one origin fetch per epoch — with the overload layer's
// shedding and upstream bounds behaving as configured.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/faults"
	"eacache/internal/hproto"
)

// gatedOrigin is an hproto origin whose responses block on gate, so a
// test can hold a leader inside its origin fetch while the rest of the
// herd piles up behind the flight.
type gatedOrigin struct {
	ln      net.Listener
	gate    chan struct{}
	fetches atomic.Int64
	wg      sync.WaitGroup
}

func startGatedOrigin(t *testing.T) *gatedOrigin {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	o := &gatedOrigin{ln: ln, gate: make(chan struct{})}
	o.wg.Add(1)
	go o.acceptLoop()
	t.Cleanup(func() {
		_ = ln.Close()
		o.wg.Wait()
	})
	return o
}

func (o *gatedOrigin) acceptLoop() {
	defer o.wg.Done()
	for {
		conn, err := o.ln.Accept()
		if err != nil {
			return
		}
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
			br := getReader(conn)
			req, err := hproto.ReadRequest(br)
			putReader(br)
			if err != nil {
				return
			}
			o.fetches.Add(1)
			<-o.gate
			size := req.SizeHint
			if size <= 0 {
				size = 4096
			}
			_ = hproto.WriteResponse(conn, hproto.Response{
				Status:        hproto.StatusOK,
				ResponderAge:  cache.NoContention,
				ContentLength: size,
				Source:        hproto.SourceOrigin,
			}, zeroReader(size))
		}()
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatal("condition not reached before deadline")
}

// TestHerdCoalescesToSingleOriginFetch is the acceptance scenario over
// real sockets: 64 concurrent misses for one URL on a live node produce
// exactly one origin fetch. The origin is gated until all 63 followers
// are parked on the leader's flight, so the count is deterministic.
func TestHerdCoalescesToSingleOriginFetch(t *testing.T) {
	checkGoroutines(t)
	const herd = 64
	origin := startGatedOrigin(t)
	n := startChaosNode(t, Config{
		ID:         "herd",
		OriginAddr: origin.ln.Addr().String(),
	})

	const url = "http://herd.example.edu/hot.html"
	var wg sync.WaitGroup
	results := make([]Result, herd)
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = n.Request(url, 8192)
		}(i)
	}
	waitUntil(t, func() bool { return n.Robustness().CoalescedFollowers == herd-1 })
	close(origin.gate)
	wg.Wait()

	if got := origin.fetches.Load(); got != 1 {
		t.Fatalf("origin fetches = %d, want exactly 1 for %d concurrent misses", got, herd)
	}
	leaders, followers := 0, 0
	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if results[i].Size != 8192 {
			t.Fatalf("request %d size = %d", i, results[i].Size)
		}
		if results[i].Coalesced {
			followers++
		} else {
			leaders++
		}
	}
	if leaders != 1 || followers != herd-1 {
		t.Fatalf("leaders=%d followers=%d, want 1/%d", leaders, followers, herd-1)
	}
	rb := n.Robustness()
	if rb.LeaderElections != 1 || rb.LeaderRetries != 0 || rb.Sheds != 0 {
		t.Fatalf("robustness = %+v", rb)
	}
}

// TestFrontDoorShedsOverInflightBound: with MaxInflight 1 and one request
// parked on a slow origin, the next request is refused fast with
// ErrOverloaded instead of queueing behind it.
func TestFrontDoorShedsOverInflightBound(t *testing.T) {
	checkGoroutines(t)
	origin := startGatedOrigin(t)
	n := startChaosNode(t, Config{
		ID:            "shedder",
		OriginAddr:    origin.ln.Addr().String(),
		MaxInflight:   1,
		ShedQueueWait: 5 * time.Millisecond,
	})

	done := make(chan error, 1)
	go func() {
		_, err := n.Request("http://herd.example.edu/slow.html", 1024)
		done <- err
	}()
	waitUntil(t, func() bool { return origin.fetches.Load() == 1 })

	_, err := n.Request("http://herd.example.edu/other.html", 1024)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second request err = %v, want ErrOverloaded", err)
	}
	if rb := n.Robustness(); rb.Sheds != 1 {
		t.Fatalf("sheds = %d, want 1", rb.Sheds)
	}

	close(origin.gate)
	if err := <-done; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
	// With the slot free again the front door admits normally.
	if _, err := n.Request("http://herd.example.edu/other.html", 1024); err != nil {
		t.Fatalf("post-drain request failed: %v", err)
	}
}

// TestUpstreamConcurrencyBounded: with OriginConcurrency 1, a second
// miss queues for the semaphore (counted) instead of reaching the origin
// while the first fetch is still in flight.
func TestUpstreamConcurrencyBounded(t *testing.T) {
	checkGoroutines(t)
	origin := startGatedOrigin(t)
	n := startChaosNode(t, Config{
		ID:                "bounded",
		OriginAddr:        origin.ln.Addr().String(),
		OriginConcurrency: 1,
	})

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = n.Request(fmt.Sprintf("http://herd.example.edu/doc%d.html", i), 1024)
		}(i)
	}
	// One fetch holds the only slot inside the gated origin; the other
	// must be queued on the semaphore, not connected to the origin. The
	// waiter is counted before the winner's request reaches the origin
	// handler, so wait for both before asserting no second fetch leaked.
	waitUntil(t, func() bool {
		return n.Robustness().OriginWaits == 1 && origin.fetches.Load() == 1
	})
	if got := origin.fetches.Load(); got != 1 {
		t.Fatalf("origin fetches = %d while semaphore held, want 1", got)
	}
	close(origin.gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
	}
	if got := origin.fetches.Load(); got != 2 {
		t.Fatalf("origin fetches = %d after drain, want 2", got)
	}
}

// TestUpstreamAcquireTimesOutWhenSaturated: an upstream fetch that cannot
// get a semaphore slot within the fetch budget fails instead of parking
// its goroutine forever.
func TestUpstreamAcquireTimesOutWhenSaturated(t *testing.T) {
	n := startChaosNode(t, Config{
		ID:                "saturated",
		OriginAddr:        deadTCPAddr(t),
		OriginConcurrency: 1,
		FetchTimeout:      30 * time.Millisecond,
	})
	n.originSem <- struct{}{} // steal the only slot
	defer func() { <-n.originSem }()

	if err := n.acquireUpstream(nil); err == nil {
		t.Fatal("saturated acquire succeeded")
	}
	if rb := n.Robustness(); rb.OriginWaits != 1 {
		t.Fatalf("origin waits = %d, want 1", rb.OriginWaits)
	}
}

// TestChaosHerd expires a hot document and unleashes 64 concurrent
// requesters on it while origin dials fail randomly. Invariants: no lost
// responses (every requester gets a result or an error), and exactly one
// origin dial per leader epoch — elections must equal completed origin
// fetches plus injected dial failures. Run under -race.
func TestChaosHerd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	checkGoroutines(t)
	const herd = 64

	injector, err := faults.New(faults.Config{Seed: 7, TCPDialErrRate: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	origin := startOrigin(t)
	n := startChaosNode(t, Config{
		ID:         "chaos-herd",
		Scheme:     core.EA{},
		OriginAddr: origin.Addr(),
		// One dial per leader epoch, so the epoch accounting below is
		// exact: a failed dial fails its epoch instead of retrying inside.
		FetchAttempts: 1,
		Faults:        injector,
	})

	// Warm the hot document (retrying through chaos), then expire it so
	// the herd below all miss at once.
	const url = "http://chaos.example.edu/hot.html"
	warmed := false
	for i := 0; i < 50 && !warmed; i++ {
		res, err := n.Request(url, 4096)
		warmed = err == nil && res.Stored
	}
	if !warmed {
		t.Fatal("could not warm the hot document through chaos")
	}
	if !n.store.Remove(url) {
		t.Fatal("hot document not resident after warmup")
	}

	baseFetches := origin.Fetches()
	baseDialErrs := injector.Stats().DialErrors
	baseElections := n.Robustness().LeaderElections

	var wg sync.WaitGroup
	var served, failed, coalesced atomic.Int64
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := n.Request(url, 4096)
			if err != nil {
				failed.Add(1)
				return
			}
			served.Add(1)
			if res.Coalesced {
				coalesced.Add(1)
			}
		}()
	}
	wg.Wait()

	// No lost responses: every requester came back with an answer.
	if served.Load()+failed.Load() != herd {
		t.Fatalf("responses = %d served + %d failed, want %d total", served.Load(), failed.Load(), herd)
	}
	if served.Load() == 0 {
		t.Fatal("every requester failed; with a 0.4 dial-error rate and retry epochs some must get through")
	}

	// Exactly one origin dial per leader epoch: each election made one
	// attempt, which either reached the origin or died as a dial error.
	elections := n.Robustness().LeaderElections - baseElections
	attempts := (origin.Fetches() - baseFetches) + (injector.Stats().DialErrors - baseDialErrs)
	if attempts != elections {
		t.Fatalf("origin dials %d != leader elections %d (fetches=%d dial-errors=%d): an epoch fetched more than once",
			attempts, elections,
			origin.Fetches()-baseFetches, injector.Stats().DialErrors-baseDialErrs)
	}
	if elections == 0 || elections > herd {
		t.Fatalf("leader elections = %d, want between 1 and %d", elections, herd)
	}
	t.Logf("chaos herd: %d served (%d coalesced), %d failed, %d leader epochs, %d origin fetches, %d dial errors",
		served.Load(), coalesced.Load(), failed.Load(), elections,
		origin.Fetches()-baseFetches, injector.Stats().DialErrors-baseDialErrs)
}

// TestOverloadConfigValidation: the new overload bounds follow the
// package's validation conventions — negatives rejected with the field
// named, and a wait bound without an in-flight bound rejected outright.
func TestOverloadConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Store: newStore(t, 1<<20), Scheme: core.AdHoc{},
			ICPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"}
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative OriginConcurrency", func(c *Config) { c.OriginConcurrency = -1 }},
		{"negative MaxInflight", func(c *Config) { c.MaxInflight = -1 }},
		{"negative ShedQueueWait", func(c *Config) { c.ShedQueueWait = -time.Second }},
		{"ShedQueueWait without MaxInflight", func(c *Config) { c.ShedQueueWait = time.Second }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		if n, err := New(cfg); err == nil {
			_ = n.Close()
			t.Errorf("%s accepted", tc.name)
		}
	}
	// The happy path applies defaults: zero values configure a bounded
	// upstream and leave shedding off.
	cfg := base()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if cap(n.originSem) != DefaultOriginConcurrency {
		t.Errorf("default origin semaphore = %d, want %d", cap(n.originSem), DefaultOriginConcurrency)
	}
	if n.inflight != nil {
		t.Error("shedding enabled without MaxInflight")
	}
}
