// Package health tracks per-peer reachability for the cooperative fetch
// path with a three-state circuit breaker:
//
//	healthy ──failure──▶ suspect ──more failures──▶ dead
//	   ▲                    │                         │
//	   └────── success ─────┴──── successful probe ───┘
//
// A healthy or suspect peer participates in every ICP fan-out. A dead
// peer is excluded — so a down neighbour stops costing the full ICP
// timeout on every local miss — except for periodic probe requests whose
// spacing backs off exponentially while the peer stays down. Any success
// (an ICP reply or a completed fetch) snaps the peer back to healthy.
//
// Evidence comes from both protocols: ICP silence on a timed-out fan-out
// and failed TCP fetches both count as failures; either kind of response
// counts as success. This mirrors Squid's peer-monitoring heuristics
// (consecutive silences mark a neighbour dead) with an explicit breaker.
package health

import (
	"sort"
	"sync"
	"time"
)

// State is a peer's breaker state.
type State int

// Breaker states.
const (
	// Healthy peers take full part in the fan-out.
	Healthy State = iota
	// Suspect peers have failed recently but not often enough to be
	// excluded; they still take part in the fan-out.
	Suspect
	// Dead peers are excluded from the fan-out except for backoff-spaced
	// probes.
	Dead
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return "state(?)"
	}
}

// Defaults for Config.
const (
	DefaultSuspectAfter = 1
	DefaultDeadAfter    = 3
	DefaultProbeBase    = 500 * time.Millisecond
	DefaultProbeMax     = 30 * time.Second
)

// Config tunes a Tracker. The zero value uses the defaults.
type Config struct {
	// SuspectAfter is the consecutive-failure count that moves a healthy
	// peer to suspect. Default 1.
	SuspectAfter int
	// DeadAfter is the consecutive-failure count that opens the breaker
	// (suspect → dead). Default 3.
	DeadAfter int
	// ProbeBase is the first probe interval after a peer dies; each
	// failed probe doubles it up to ProbeMax. Defaults 500ms / 30s.
	ProbeBase time.Duration
	ProbeMax  time.Duration
	// Now is the clock, for deterministic tests. Defaults to time.Now.
	Now func() time.Time
	// OnStateChange, when set, observes every transition. Called without
	// the tracker lock held.
	OnStateChange func(peer string, from, to State)
}

func (c Config) withDefaults() Config {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = c.SuspectAfter + DefaultDeadAfter - DefaultSuspectAfter
	}
	if c.DeadAfter < c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter
	}
	if c.ProbeBase <= 0 {
		c.ProbeBase = DefaultProbeBase
	}
	if c.ProbeMax < c.ProbeBase {
		c.ProbeMax = DefaultProbeMax
		if c.ProbeMax < c.ProbeBase {
			c.ProbeMax = c.ProbeBase
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

type peerState struct {
	state     State
	failures  int           // consecutive failures
	since     time.Time     // when state was last entered (zero: never transitioned)
	probeWait time.Duration // current backoff interval while dead
	nextProbe time.Time     // earliest next probe while dead
}

// Tracker is a concurrent per-peer breaker map. Peers are identified by an
// opaque string key (the node uses the peer's fetch address). Unknown
// peers are healthy.
type Tracker struct {
	cfg Config

	mu    sync.Mutex
	peers map[string]*peerState
}

// NewTracker returns a Tracker with cfg's thresholds.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), peers: make(map[string]*peerState)}
}

func (t *Tracker) get(peer string) *peerState {
	ps, ok := t.peers[peer]
	if !ok {
		ps = &peerState{}
		t.peers[peer] = ps
	}
	return ps
}

// Allow reports whether peer should take part in the next exchange. For a
// dead peer it returns true only when a probe is due, and books the next
// probe slot so concurrent fan-outs do not all probe at once.
func (t *Tracker) Allow(peer string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps, ok := t.peers[peer]
	if !ok || ps.state != Dead {
		return true
	}
	now := t.cfg.Now()
	if now.Before(ps.nextProbe) {
		return false
	}
	// Book the probe: double the backoff now so further fan-outs skip
	// the peer until this probe's outcome (success resets everything).
	ps.probeWait *= 2
	if ps.probeWait > t.cfg.ProbeMax {
		ps.probeWait = t.cfg.ProbeMax
	}
	ps.nextProbe = now.Add(ps.probeWait)
	return true
}

// State returns peer's current breaker state.
func (t *Tracker) State(peer string) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ps, ok := t.peers[peer]; ok {
		return ps.state
	}
	return Healthy
}

// ReportSuccess records a successful exchange with peer (ICP reply or
// completed fetch) and closes the breaker.
func (t *Tracker) ReportSuccess(peer string) {
	t.mu.Lock()
	ps := t.get(peer)
	from := ps.state
	ps.state = Healthy
	ps.failures = 0
	ps.probeWait = 0
	ps.nextProbe = time.Time{}
	if from != Healthy {
		ps.since = t.cfg.Now()
	}
	t.mu.Unlock()
	t.notify(peer, from, Healthy)
}

// ReportFailure records a failed exchange with peer (ICP silence on a
// timed-out fan-out, failed dial, or broken fetch) and advances the
// breaker.
func (t *Tracker) ReportFailure(peer string) {
	t.mu.Lock()
	ps := t.get(peer)
	from := ps.state
	ps.failures++
	switch {
	case ps.failures >= t.cfg.DeadAfter:
		if ps.state != Dead {
			ps.state = Dead
			ps.probeWait = t.cfg.ProbeBase
			ps.nextProbe = t.cfg.Now().Add(ps.probeWait)
		}
	case ps.failures >= t.cfg.SuspectAfter:
		ps.state = Suspect
	}
	to := ps.state
	if from != to {
		ps.since = t.cfg.Now()
	}
	t.mu.Unlock()
	t.notify(peer, from, to)
}

func (t *Tracker) notify(peer string, from, to State) {
	if from != to && t.cfg.OnStateChange != nil {
		t.cfg.OnStateChange(peer, from, to)
	}
}

// Forget drops peers no longer in the neighbour set, keyed by the same
// strings passed to Report*. keep is the surviving peer set.
func (t *Tracker) Forget(keep map[string]bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for p := range t.peers {
		if !keep[p] {
			delete(t.peers, p)
		}
	}
}

// Snapshot returns every tracked peer's state, sorted by peer key, for
// logs and tests.
func (t *Tracker) Snapshot() []PeerStatus {
	t.mu.Lock()
	out := make([]PeerStatus, 0, len(t.peers))
	for p, ps := range t.peers {
		out = append(out, PeerStatus{Peer: p, State: ps.state, Failures: ps.failures, Since: ps.since})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Status returns one peer's breaker status. An untracked peer is healthy
// with a zero Since.
func (t *Tracker) Status(peer string) PeerStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ps, ok := t.peers[peer]; ok {
		return PeerStatus{Peer: peer, State: ps.state, Failures: ps.failures, Since: ps.since}
	}
	return PeerStatus{Peer: peer, State: Healthy}
}

// PeerStatus is one Snapshot row.
type PeerStatus struct {
	Peer     string
	State    State
	Failures int
	// Since is when the peer entered its current state (zero for a peer
	// that has never transitioned — healthy since first sight). The
	// membership layer's ejection grace window is measured from it.
	Since time.Time
}
