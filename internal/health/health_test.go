package health

import (
	"sync"
	"testing"
	"time"
)

// clock is a manual test clock.
type clock struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *clock { return &clock{now: time.Unix(1000, 0)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestUnknownPeerIsHealthy(t *testing.T) {
	tr := NewTracker(Config{})
	if tr.State("p") != Healthy {
		t.Fatal("unknown peer not healthy")
	}
	if !tr.Allow("p") {
		t.Fatal("unknown peer not allowed")
	}
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := newClock()
	tr := NewTracker(Config{SuspectAfter: 1, DeadAfter: 3, Now: clk.Now})

	tr.ReportFailure("p")
	if got := tr.State("p"); got != Suspect {
		t.Fatalf("after 1 failure: %v, want suspect", got)
	}
	if !tr.Allow("p") {
		t.Fatal("suspect peer excluded from fan-out")
	}
	tr.ReportFailure("p")
	tr.ReportFailure("p")
	if got := tr.State("p"); got != Dead {
		t.Fatalf("after 3 failures: %v, want dead", got)
	}
	if tr.Allow("p") {
		t.Fatal("dead peer allowed before the probe interval")
	}
}

func TestSuccessResetsConsecutiveCount(t *testing.T) {
	tr := NewTracker(Config{DeadAfter: 3})
	tr.ReportFailure("p")
	tr.ReportFailure("p")
	tr.ReportSuccess("p")
	if got := tr.State("p"); got != Healthy {
		t.Fatalf("after success: %v, want healthy", got)
	}
	tr.ReportFailure("p")
	tr.ReportFailure("p")
	if got := tr.State("p"); got == Dead {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestDeadPeerProbesWithExponentialBackoff(t *testing.T) {
	clk := newClock()
	tr := NewTracker(Config{
		DeadAfter: 1, ProbeBase: time.Second, ProbeMax: 4 * time.Second, Now: clk.Now,
	})
	tr.ReportFailure("p") // dead; first probe due at +1s

	if tr.Allow("p") {
		t.Fatal("probe before the base interval")
	}
	clk.Advance(time.Second)
	if !tr.Allow("p") {
		t.Fatal("no probe at the base interval")
	}
	// Booking the probe doubled the wait: next at +2s, not immediately.
	if tr.Allow("p") {
		t.Fatal("second probe immediately after the first")
	}
	clk.Advance(2 * time.Second)
	if !tr.Allow("p") {
		t.Fatal("no probe after the doubled interval")
	}
	// Backoff is capped at ProbeMax.
	clk.Advance(4 * time.Second)
	if !tr.Allow("p") {
		t.Fatal("no probe at the capped interval")
	}

	// A successful probe resurrects the peer entirely.
	tr.ReportSuccess("p")
	if tr.State("p") != Healthy || !tr.Allow("p") {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestOnStateChangeObservesTransitions(t *testing.T) {
	clk := newClock()
	var transitions []string
	tr := NewTracker(Config{
		SuspectAfter: 1, DeadAfter: 2, Now: clk.Now,
		OnStateChange: func(peer string, from, to State) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})
	tr.ReportFailure("p")
	tr.ReportFailure("p")
	tr.ReportSuccess("p")
	want := []string{"healthy->suspect", "suspect->dead", "dead->healthy"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

func TestForgetDropsRemovedPeers(t *testing.T) {
	tr := NewTracker(Config{DeadAfter: 1})
	tr.ReportFailure("gone")
	tr.ReportFailure("kept")
	tr.Forget(map[string]bool{"kept": true})
	if tr.State("gone") != Healthy {
		t.Fatal("forgotten peer kept its state")
	}
	if tr.State("kept") != Dead {
		t.Fatal("kept peer lost its state")
	}
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Peer != "kept" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestConcurrentReports(t *testing.T) {
	tr := NewTracker(Config{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if j%2 == 0 {
					tr.ReportFailure("p")
				} else {
					tr.ReportSuccess("p")
				}
				tr.Allow("p")
				tr.State("p")
			}
		}(i)
	}
	wg.Wait()
}

func TestStatusTracksStateSince(t *testing.T) {
	clk := newClock()
	tr := NewTracker(Config{SuspectAfter: 1, DeadAfter: 2, Now: clk.Now})

	// Untracked: healthy, never transitioned.
	st := tr.Status("p")
	if st.State != Healthy || !st.Since.IsZero() || st.Failures != 0 {
		t.Fatalf("untracked status = %+v", st)
	}

	tr.ReportFailure("p")
	suspectAt := clk.Now()
	st = tr.Status("p")
	if st.State != Suspect || !st.Since.Equal(suspectAt) || st.Failures != 1 {
		t.Fatalf("after one failure: %+v", st)
	}

	// A repeat failure in the same state must NOT reset Since — the
	// ejection grace window is measured from the first entry into Dead.
	clk.Advance(time.Second)
	tr.ReportFailure("p")
	deadAt := clk.Now()
	clk.Advance(time.Second)
	tr.ReportFailure("p")
	st = tr.Status("p")
	if st.State != Dead {
		t.Fatalf("state = %v, want dead", st.State)
	}
	if !st.Since.Equal(deadAt) {
		t.Fatalf("Since = %v, want first death at %v", st.Since, deadAt)
	}
	if st.Failures != 3 {
		t.Fatalf("failures = %d", st.Failures)
	}

	// Recovery stamps the healthy transition time.
	clk.Advance(time.Minute)
	tr.ReportSuccess("p")
	st = tr.Status("p")
	if st.State != Healthy || !st.Since.Equal(clk.Now()) || st.Failures != 0 {
		t.Fatalf("after recovery: %+v", st)
	}
}

func TestSnapshotMatchesStatus(t *testing.T) {
	clk := newClock()
	tr := NewTracker(Config{SuspectAfter: 1, DeadAfter: 2, Now: clk.Now})
	tr.ReportFailure("b")
	tr.ReportFailure("b")
	tr.ReportSuccess("a")

	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].Peer != "a" || snap[1].Peer != "b" {
		t.Fatalf("snapshot = %+v", snap)
	}
	for _, row := range snap {
		if got := tr.Status(row.Peer); got != row {
			t.Fatalf("Status(%q) = %+v, snapshot row %+v", row.Peer, got, row)
		}
	}
}
