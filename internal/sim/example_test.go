package sim_test

import (
	"fmt"

	"eacache/internal/core"
	"eacache/internal/group"
	"eacache/internal/sim"
	"eacache/internal/trace"
)

// The whole pipeline: generate a workload, wire a cooperative group, and
// replay — deterministic for a given seed.
func ExampleRun() {
	cfg := trace.BULike().Scaled(0.002) // ~1,150 requests
	records, err := trace.Generate(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)

	g, err := group.New(group.Config{
		Caches:         4,
		AggregateBytes: 64 << 10,
		Scheme:         core.EA{},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	report, err := sim.Run(g, records, sim.Config{})
	if err != nil {
		fmt.Println(err)
		return
	}

	fmt.Println("requests:", report.Group.Requests)
	fmt.Println("conserved:", report.Group.LocalHits+report.Group.RemoteHits+report.Group.Misses == report.Group.Requests)
	fmt.Println("scheme:", report.Scheme)

	// Output:
	// requests: 1151
	// conserved: true
	// scheme: ea
}
