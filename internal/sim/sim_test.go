package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/group"
	"eacache/internal/metrics"
	"eacache/internal/trace"
)

var t0 = time.Date(1994, time.November, 15, 12, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

func newGroup(t *testing.T, caches int, aggregate int64, scheme core.Scheme) *group.Group {
	t.Helper()
	g, err := group.New(group.Config{
		Caches:         caches,
		AggregateBytes: aggregate,
		Scheme:         scheme,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func rec(sec int, client, url string, size int64) trace.Record {
	return trace.Record{Time: at(sec), Client: client, URL: url, Size: size}
}

func TestRunValidation(t *testing.T) {
	g := newGroup(t, 2, 1<<20, core.AdHoc{})
	if _, err := Run(nil, nil, Config{}); err == nil {
		t.Fatal("nil group accepted")
	}
	unsorted := []trace.Record{rec(10, "u", "a", 1), rec(5, "u", "b", 1)}
	if _, err := Run(g, unsorted, Config{}); err == nil {
		t.Fatal("unsorted trace accepted")
	}
	zero := []trace.Record{rec(0, "u", "a", 0)}
	if _, err := Run(g, zero, Config{DefaultDocSize: -1}); err == nil {
		t.Fatal("zero size accepted with DefaultDocSize=-1")
	}
}

func TestRunCountsOutcomes(t *testing.T) {
	g := newGroup(t, 1, 1<<20, core.AdHoc{})
	records := []trace.Record{
		rec(0, "u1", "http://a/", 100), // miss
		rec(1, "u1", "http://a/", 100), // local hit
		rec(2, "u1", "http://b/", 200), // miss
		rec(3, "u1", "http://a/", 100), // local hit
	}
	rep, err := Run(g, records, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Group.Requests != 4 || rep.Group.LocalHits != 2 || rep.Group.Misses != 2 {
		t.Fatalf("counters = %+v", rep.Group)
	}
	if rep.Group.BytesRequested != 500 || rep.Group.BytesLocal != 200 {
		t.Fatalf("bytes = %+v", rep.Group)
	}
	// Simulated latency: 2 misses + 2 local hits under the paper model.
	want := 2*metrics.PaperLatencies.Miss + 2*metrics.PaperLatencies.LocalHit
	if rep.Group.SimLatency != want {
		t.Fatalf("SimLatency = %v, want %v", rep.Group.SimLatency, want)
	}
	if diff := rep.EstimatedLatency - want/4; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("EstimatedLatency = %v, want ~%v", rep.EstimatedLatency, want/4)
	}
}

func TestRunRemoteHitAcrossCaches(t *testing.T) {
	g := newGroup(t, 2, 1<<21, core.AdHoc{})
	// Find two clients routed to different caches.
	var c0, c1 string
	leaves := g.Leaves()
	for i := 0; (c0 == "" || c1 == "") && i < 1000; i++ {
		client := fmt.Sprintf("user-%d", i)
		switch g.Route(client).ID() {
		case leaves[0].ID():
			if c0 == "" {
				c0 = client
			}
		case leaves[1].ID():
			if c1 == "" {
				c1 = client
			}
		}
	}
	if c0 == "" || c1 == "" {
		t.Fatal("could not find clients for both caches")
	}
	records := []trace.Record{
		rec(0, c0, "http://a/", 100), // miss at cache 0
		rec(1, c1, "http://a/", 100), // remote hit from cache 0
	}
	rep, err := Run(g, records, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Group.RemoteHits != 1 || rep.Group.Misses != 1 {
		t.Fatalf("counters = %+v", rep.Group)
	}
}

func TestRunZeroSizeSubstitution(t *testing.T) {
	g := newGroup(t, 1, 1<<20, core.AdHoc{})
	records := []trace.Record{rec(0, "u", "http://a/", 0)}
	rep, err := Run(g, records, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Group.BytesRequested != trace.DefaultDocSize {
		t.Fatalf("bytes = %d, want the 4KB substitution", rep.Group.BytesRequested)
	}
}

func TestRunDeterminism(t *testing.T) {
	gen := trace.BULike().Scaled(0.005)
	records, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)

	run := func() *Report {
		g := newGroup(t, 4, 256<<10, core.EA{})
		rep, err := Run(g, records, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical runs diverged")
	}
}

func TestRunConservation(t *testing.T) {
	gen := trace.BULike().Scaled(0.01)
	records, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)

	for _, schemeName := range []string{"adhoc", "ea", "never"} {
		scheme, _ := core.New(schemeName)
		g := newGroup(t, 4, 128<<10, scheme)
		rep, err := Run(g, records, Config{})
		if err != nil {
			t.Fatal(err)
		}
		c := rep.Group
		if c.Requests != int64(len(records)) {
			t.Fatalf("%s: requests %d != %d", schemeName, c.Requests, len(records))
		}
		if c.LocalHits+c.RemoteHits+c.Misses != c.Requests {
			t.Fatalf("%s: outcome conservation violated", schemeName)
		}
		if c.BytesLocal+c.BytesRemote+c.BytesMissed != c.BytesRequested {
			t.Fatalf("%s: byte conservation violated", schemeName)
		}
		// Per-proxy counters sum to the group counters.
		var sum metrics.CountersSnapshot
		for _, pr := range rep.PerProxy {
			sum.Add(pr.Counters)
		}
		if sum.Requests != c.Requests || sum.LocalHits != c.LocalHits ||
			sum.RemoteHits != c.RemoteHits || sum.Misses != c.Misses {
			t.Fatalf("%s: per-proxy counters do not sum to group", schemeName)
		}
		// No cache over capacity.
		for _, pr := range rep.PerProxy {
			if pr.ResidentBytes > g.Config().AggregateBytes {
				t.Fatalf("%s: cache over aggregate", schemeName)
			}
		}
	}
}

// TestEANeverWorseThanAdHoc checks the paper's headline claim on the
// default workload at several cache sizes: the EA scheme's cumulative group
// hit rate is at least the ad-hoc scheme's (within a small tolerance for
// the heuristic cases the paper's §3.4 argument glosses over).
func TestEANeverWorseThanAdHoc(t *testing.T) {
	gen := trace.BULike().Scaled(0.02)
	records, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)
	trace.SortByTime(records)

	for _, aggregate := range []int64{64 << 10, 512 << 10, 4 << 20} {
		adhocGroup := newGroup(t, 4, aggregate, core.AdHoc{})
		adhoc, err := Run(adhocGroup, records, Config{})
		if err != nil {
			t.Fatal(err)
		}
		eaGroup := newGroup(t, 4, aggregate, core.EA{})
		ea, err := Run(eaGroup, records, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if ea.Group.HitRate() < adhoc.Group.HitRate()-0.01 {
			t.Errorf("aggregate %s: EA hit rate %.4f clearly below ad-hoc %.4f",
				FormatBytes(aggregate), ea.Group.HitRate(), adhoc.Group.HitRate())
		}
		// And the motivation holds: EA never replicates more.
		if ea.Replication.MeanCopies() > adhoc.Replication.MeanCopies()+1e-9 {
			t.Errorf("aggregate %s: EA replicates more (%.3f > %.3f)",
				FormatBytes(aggregate), ea.Replication.MeanCopies(), adhoc.Replication.MeanCopies())
		}
	}
}

func TestRunHierarchical(t *testing.T) {
	gen := trace.BULike().Scaled(0.005)
	records, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)

	g, err := group.New(group.Config{
		Caches:         3,
		AggregateBytes: 1 << 20,
		Scheme:         core.EA{},
		Architecture:   group.Hierarchical,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(g, records, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Architecture != group.Hierarchical {
		t.Fatalf("architecture = %v", rep.Architecture)
	}
	if len(rep.PerProxy) != 4 {
		t.Fatalf("per-proxy entries = %d, want 4 (3 leaves + parent)", len(rep.PerProxy))
	}
	// The parent serves no clients directly.
	parent := rep.PerProxy[3]
	if parent.ID != "parent-0" || parent.Counters.Requests != 0 {
		t.Fatalf("parent report = %+v", parent)
	}
	if rep.Group.Requests != int64(len(records)) {
		t.Fatal("request conservation")
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{100 << 10, "100KB"},
		{1 << 20, "1MB"},
		{10 << 20, "10MB"},
		{1 << 30, "1GB"},
		{12345, "12345B"},
		{1536, "1536B"}, // 1.5KB is not a whole unit
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.n); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestProxyReportExpirationAges(t *testing.T) {
	// A 2-cache run small enough to force evictions must report finite
	// expiration ages and eviction counts.
	gen := trace.BULike().Scaled(0.005)
	records, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)

	g := newGroup(t, 2, 32<<10, core.EA{})
	rep, err := Run(g, records, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.PerProxy {
		if pr.Evictions == 0 {
			t.Fatalf("%s: no evictions at 16KB per cache", pr.ID)
		}
		if pr.ExpirationAge == cache.NoContention || pr.ExpirationAge < 0 {
			t.Fatalf("%s: expiration age = %v", pr.ID, pr.ExpirationAge)
		}
	}
	if rep.AvgCacheExpirationAge <= 0 {
		t.Fatalf("group expiration age = %v", rep.AvgCacheExpirationAge)
	}
}

func TestRunWarmup(t *testing.T) {
	g := newGroup(t, 1, 1<<20, core.AdHoc{})
	records := []trace.Record{
		rec(0, "u", "http://a/", 100), // warmup: miss, uncounted
		rec(1, "u", "http://a/", 100), // counted: local hit
		rec(2, "u", "http://b/", 100), // counted: miss
	}
	rep, err := Run(g, records, Config{Warmup: 0.34})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Group.Requests != 2 {
		t.Fatalf("requests = %d, want 2 (one warmup record)", rep.Group.Requests)
	}
	if rep.Group.LocalHits != 1 || rep.Group.Misses != 1 {
		t.Fatalf("counters = %+v", rep.Group)
	}
	// Warmup populated the cache even though it was not counted.
	if !g.Leaves()[0].Store().Contains("http://a/") {
		t.Fatal("warmup record not applied to cache state")
	}
}

func TestRunWarmupValidation(t *testing.T) {
	g := newGroup(t, 1, 1<<20, core.AdHoc{})
	for _, w := range []float64{-0.1, 1.0, 1.5} {
		if _, err := Run(g, nil, Config{Warmup: w}); err == nil {
			t.Fatalf("warmup %v accepted", w)
		}
	}
}

func TestRunWarmedEASteadyState(t *testing.T) {
	// With half the trace as warmup, the schemes' steady-state ordering
	// must match the whole-run ordering on the default workload.
	gen := trace.BULike().Scaled(0.01)
	records, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)

	hit := func(scheme core.Scheme) float64 {
		g := newGroup(t, 4, 256<<10, scheme)
		rep, err := Run(g, records, Config{Warmup: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Group.Requests != int64(len(records)-len(records)/2) {
			t.Fatalf("warmed request count = %d", rep.Group.Requests)
		}
		return rep.Group.HitRate()
	}
	if ea, adhoc := hit(core.EA{}), hit(core.AdHoc{}); ea < adhoc-0.01 {
		t.Fatalf("steady-state EA %.4f clearly below adhoc %.4f", ea, adhoc)
	}
}

func TestRunPerClassCounters(t *testing.T) {
	g := newGroup(t, 1, 1<<20, core.AdHoc{})
	records := []trace.Record{
		rec(0, "u", "http://hot/a", 100),
		rec(1, "u", "http://hot/a", 100),
		rec(2, "u", "http://tail/b", 200),
	}
	rep, err := Run(g, records, Config{
		ClassifyURL: func(url string) string {
			if strings.HasPrefix(url, "http://hot/") {
				return "hot"
			}
			return "tail"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerClass) != 2 {
		t.Fatalf("classes = %v", rep.PerClass)
	}
	hot, tail := rep.PerClass["hot"], rep.PerClass["tail"]
	if hot.Requests != 2 || hot.LocalHits != 1 {
		t.Fatalf("hot = %+v", hot)
	}
	if tail.Requests != 1 || tail.Misses != 1 {
		t.Fatalf("tail = %+v", tail)
	}
	// Class counters sum to the group counters.
	var sum metrics.CountersSnapshot
	sum.Add(*hot)
	sum.Add(*tail)
	if sum.Requests != rep.Group.Requests || sum.BytesRequested != rep.Group.BytesRequested {
		t.Fatal("per-class counters do not sum to group")
	}
}

func TestRunPerClassNilWhenUnset(t *testing.T) {
	g := newGroup(t, 1, 1<<20, core.AdHoc{})
	rep, err := Run(g, []trace.Record{rec(0, "u", "http://a/", 10)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerClass != nil {
		t.Fatal("PerClass set without a classifier")
	}
}
