// Package sim drives a cache group with a reference stream: it replays
// trace records in timestamp order against the group, applies the paper's
// latency model to every outcome, and produces the report the experiment
// harness and benchmarks consume.
//
// The simulation is deterministic: same trace + same group configuration
// yields bit-identical reports.
package sim

import (
	"fmt"
	"time"

	"eacache/internal/group"
	"eacache/internal/metrics"
	"eacache/internal/proxy"
	"eacache/internal/trace"
)

// Config parameterises a run.
type Config struct {
	// Latency is the service-latency model. Defaults to
	// metrics.PaperLatencies (146/342/2784 ms).
	Latency metrics.LatencyModel
	// DefaultDocSize substitutes non-positive trace sizes, as the paper
	// does with 4KB. Defaults to trace.DefaultDocSize; set to -1 to fail
	// on zero-size records instead.
	DefaultDocSize int64
	// Warmup is the fraction of the trace (from the start) replayed to
	// populate the caches without being counted in the metrics. The
	// paper reports whole-run (cold-start-inclusive) numbers, so the
	// default is 0; warmed measurements isolate steady-state behaviour.
	Warmup float64
	// ClassifyURL, when set, buckets every counted request into a named
	// class (e.g. "hot" / "tail", or by content type) and the report
	// carries per-class counters — the lens for questions like "where do
	// the EA scheme's extra hits come from?".
	ClassifyURL func(url string) string
}

func (c Config) withDefaults() Config {
	if c.Latency == (metrics.LatencyModel{}) {
		c.Latency = metrics.PaperLatencies
	}
	if c.DefaultDocSize == 0 {
		c.DefaultDocSize = trace.DefaultDocSize
	}
	return c
}

// ProxyReport is the per-cache slice of a Report.
type ProxyReport struct {
	ID       string
	Counters metrics.CountersSnapshot
	// Evictions and ExpirationAge describe the cache's contention over
	// the run (cumulative expiration age, the Table 1 quantity).
	Evictions     int64
	ExpirationAge time.Duration
	ResidentDocs  int
	ResidentBytes int64
	ICP           proxy.ICPStats
}

// Report is the outcome of one simulation run.
type Report struct {
	// Scheme and Architecture echo the group configuration.
	Scheme       string
	Architecture group.Architecture
	Caches       int
	Aggregate    int64

	// Group aggregates every request in the run.
	Group metrics.CountersSnapshot
	// PerProxy holds one entry per client-facing cache plus the
	// hierarchy parent (last) if present. The parent serves no clients
	// directly, so its Counters stay zero, but its cache statistics
	// matter.
	PerProxy []ProxyReport

	// AvgCacheExpirationAge is the paper's Table 1 metric.
	AvgCacheExpirationAge time.Duration
	// EstimatedLatency is the paper's equation 6 applied to the outcome
	// mix.
	EstimatedLatency time.Duration
	// Replication summarises end-of-run document replication.
	Replication group.ReplicationStats

	// PerClass holds the per-URL-class counters when Config.ClassifyURL
	// was set (nil otherwise).
	PerClass map[string]*metrics.CountersSnapshot

	// Latency echoes the model used.
	Latency metrics.LatencyModel
}

// Run replays records (which must be chronologically sorted — use
// trace.SortByTime) against g and reports the paper's metrics.
func Run(g *group.Group, records []trace.Record, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if g == nil {
		return nil, fmt.Errorf("sim: nil group")
	}
	if cfg.Warmup < 0 || cfg.Warmup >= 1 {
		return nil, fmt.Errorf("sim: warmup must be in [0,1), got %v", cfg.Warmup)
	}
	if !trace.Sorted(records) {
		return nil, fmt.Errorf("sim: trace is not sorted by time")
	}
	warm := int(cfg.Warmup * float64(len(records)))

	perProxy := make(map[string]*metrics.Counters, len(g.Leaves()))
	for _, p := range g.Leaves() {
		perProxy[p.ID()] = &metrics.Counters{}
	}
	var perClass map[string]*metrics.Counters
	if cfg.ClassifyURL != nil {
		perClass = make(map[string]*metrics.Counters)
	}

	var total metrics.Counters
	for i, rec := range records {
		size := rec.Size
		if size <= 0 {
			if cfg.DefaultDocSize < 0 {
				return nil, fmt.Errorf("sim: record %d (%s) has no size", i, rec.URL)
			}
			size = cfg.DefaultDocSize
		}
		p := g.Route(rec.Client)
		res, err := p.Request(rec.URL, size, rec.Time)
		if err != nil {
			return nil, fmt.Errorf("sim: record %d: %w", i, err)
		}
		if i < warm {
			continue // warmup: populate caches, record nothing
		}
		lat := cfg.Latency.Of(res.Outcome)
		total.Record(res.Outcome, size)
		total.AddSimLatency(lat)
		pc := perProxy[p.ID()]
		pc.Record(res.Outcome, size)
		pc.AddSimLatency(lat)
		if perClass != nil {
			class := cfg.ClassifyURL(rec.URL)
			cc := perClass[class]
			if cc == nil {
				cc = &metrics.Counters{}
				perClass[class] = cc
			}
			cc.Record(res.Outcome, size)
			cc.AddSimLatency(lat)
		}
	}

	rep := buildReport(g, total.Snapshot(), perProxy, cfg)
	if perClass != nil {
		rep.PerClass = make(map[string]*metrics.CountersSnapshot, len(perClass))
		for class, cc := range perClass {
			s := cc.Snapshot()
			rep.PerClass[class] = &s
		}
	}
	return rep, nil
}

func buildReport(g *group.Group, total metrics.CountersSnapshot, perProxy map[string]*metrics.Counters, cfg Config) *Report {
	gc := g.Config()
	rep := &Report{
		Scheme:                gc.Scheme.Name(),
		Architecture:          gc.Architecture,
		Caches:                gc.Caches,
		Aggregate:             gc.AggregateBytes,
		Group:                 total,
		AvgCacheExpirationAge: g.AvgCumulativeExpirationAge(),
		EstimatedLatency:      cfg.Latency.EstimatedAverageLatency(total),
		Replication:           g.Replication(),
		Latency:               cfg.Latency,
	}
	for _, p := range g.All() {
		pr := ProxyReport{
			ID:            p.ID(),
			Evictions:     p.Store().Evictions(),
			ExpirationAge: p.Store().CumulativeExpirationAge(),
			ResidentDocs:  p.Store().Len(),
			ResidentBytes: p.Store().Used(),
			ICP:           p.ICP(),
		}
		if c, ok := perProxy[p.ID()]; ok {
			pr.Counters = c.Snapshot()
		}
		rep.PerProxy = append(rep.PerProxy, pr)
	}
	return rep
}

// String implements fmt.Stringer with a compact run summary.
func (r *Report) String() string {
	return fmt.Sprintf(
		"%s/%s caches=%d agg=%s: hit=%.2f%% byte-hit=%.2f%% local=%.2f%% remote=%.2f%% miss=%.2f%% est-lat=%s exp-age=%s",
		r.Scheme, r.Architecture, r.Caches, FormatBytes(r.Aggregate),
		100*r.Group.HitRate(), 100*r.Group.ByteHitRate(),
		100*r.Group.LocalHitRate(), 100*r.Group.RemoteHitRate(), 100*r.Group.MissRate(),
		r.EstimatedLatency.Round(time.Millisecond),
		r.AvgCacheExpirationAge.Round(time.Second),
	)
}

// FormatBytes renders a byte count in the paper's units (100KB, 1MB, ...).
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n/(1<<30))
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n/(1<<20))
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
