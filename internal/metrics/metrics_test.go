package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{LocalHit, "local-hit"},
		{RemoteHit, "remote-hit"},
		{Miss, "miss"},
		{Outcome(99), "outcome(99)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.o, got, tt.want)
		}
	}
}

func TestCountersRecord(t *testing.T) {
	var c Counters
	c.Record(LocalHit, 100)
	c.Record(RemoteHit, 200)
	c.Record(Miss, 700)
	c.Record(LocalHit, 100)

	s := c.Snapshot()
	if s.Requests != 4 {
		t.Fatalf("Requests = %d", s.Requests)
	}
	if s.LocalHits != 2 || s.RemoteHits != 1 || s.Misses != 1 {
		t.Fatalf("split = %d/%d/%d", s.LocalHits, s.RemoteHits, s.Misses)
	}
	if s.BytesRequested != 1100 || s.BytesLocal != 200 || s.BytesRemote != 200 || s.BytesMissed != 700 {
		t.Fatalf("bytes = %d/%d/%d/%d", s.BytesRequested, s.BytesLocal, s.BytesRemote, s.BytesMissed)
	}
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v", got)
	}
	if got := c.ByteHitRate(); math.Abs(got-400.0/1100) > 1e-12 {
		t.Fatalf("ByteHitRate = %v", got)
	}
	if got := c.LocalHitRate(); got != 0.5 {
		t.Fatalf("LocalHitRate = %v", got)
	}
	if got := c.RemoteHitRate(); got != 0.25 {
		t.Fatalf("RemoteHitRate = %v", got)
	}
	if got := c.MissRate(); got != 0.25 {
		t.Fatalf("MissRate = %v", got)
	}
}

func TestCountersZeroSafe(t *testing.T) {
	var c Counters
	if c.HitRate() != 0 || c.ByteHitRate() != 0 || c.MissRate() != 0 || c.MeanSimLatency() != 0 {
		t.Fatal("zero counters must not divide by zero")
	}
}

func TestCountersAdd(t *testing.T) {
	var a, b Counters
	a.Record(LocalHit, 10)
	a.AddSimLatency(time.Second)
	b.Record(Miss, 20)
	b.AddSimLatency(2 * time.Second)
	a.Add(b.Snapshot())
	s := a.Snapshot()
	if s.Requests != 2 || s.BytesRequested != 30 || s.SimLatency != 3*time.Second {
		t.Fatalf("Add: %+v", s)
	}
}

func TestSnapshotAdd(t *testing.T) {
	var a, b Counters
	a.Record(LocalHit, 10)
	b.Record(Miss, 20)
	sum := a.Snapshot()
	sum.Add(b.Snapshot())
	if sum.Requests != 2 || sum.BytesRequested != 30 || sum.Hits() != 1 {
		t.Fatalf("snapshot Add: %+v", sum)
	}
}

// TestCountersConcurrentRecordScrape is the regression test for the latent
// data race the telemetry layer surfaced: a /metrics scrape (Snapshot) must
// be able to run concurrently with Record on the request path. Run under
// -race.
func TestCountersConcurrentRecordScrape(t *testing.T) {
	var c Counters
	const (
		writers = 4
		perW    = 10000
	)
	var writersWG, scrapersWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				c.Record(Outcome(i%3+1), int64(i%1024))
				c.AddSimLatency(time.Millisecond)
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		scrapersWG.Add(1)
		go func() {
			defer scrapersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Mid-Record snapshots may lag attribution (the total
				// is incremented before the outcome counter), but the
				// split must never exceed the total.
				snap := c.Snapshot()
				if snap.LocalHits+snap.RemoteHits+snap.Misses > snap.Requests {
					t.Error("snapshot outcome split exceeds requests")
					return
				}
				_ = c.HitRate()
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	scrapersWG.Wait()
	if got := c.Snapshot().Requests; got != writers*perW {
		t.Fatalf("requests = %d, want %d", got, writers*perW)
	}
}

func TestLatencyModelOf(t *testing.T) {
	m := PaperLatencies
	if m.Of(LocalHit) != 146*time.Millisecond ||
		m.Of(RemoteHit) != 342*time.Millisecond ||
		m.Of(Miss) != 2784*time.Millisecond {
		t.Fatalf("paper latencies wrong: %+v", m)
	}
}

func TestEstimatedAverageLatencyEq6(t *testing.T) {
	// Paper example shape: equal thirds of local/remote/miss gives the
	// plain average of the three latencies.
	var c Counters
	c.Record(LocalHit, 1)
	c.Record(RemoteHit, 1)
	c.Record(Miss, 1)
	want := (146 + 342 + 2784) / 3
	got := PaperLatencies.EstimatedAverageLatency(c.Snapshot()).Milliseconds()
	if got != int64(want) {
		t.Fatalf("eq6 = %dms, want %dms", got, want)
	}

	var empty Counters
	if PaperLatencies.EstimatedAverageLatency(empty.Snapshot()) != 0 {
		t.Fatal("empty counters should estimate 0")
	}
}

func TestEstimatedLatencyAllMisses(t *testing.T) {
	var c Counters
	for i := 0; i < 10; i++ {
		c.Record(Miss, 1)
	}
	if got := PaperLatencies.EstimatedAverageLatency(c.Snapshot()); got != 2784*time.Millisecond {
		t.Fatalf("all-miss latency = %v", got)
	}
}

// TestQuickConservation checks the accounting identity the simulator
// relies on: local + remote + miss = requests and the byte split sums to
// bytes requested, for arbitrary outcome sequences.
func TestQuickConservation(t *testing.T) {
	f := func(kinds []uint8) bool {
		var c Counters
		for _, k := range kinds {
			size := int64(k)%512 + 1
			switch k % 3 {
			case 0:
				c.Record(LocalHit, size)
			case 1:
				c.Record(RemoteHit, size)
			default:
				c.Record(Miss, size)
			}
		}
		s := c.Snapshot()
		if s.LocalHits+s.RemoteHits+s.Misses != s.Requests {
			return false
		}
		if s.BytesLocal+s.BytesRemote+s.BytesMissed != s.BytesRequested {
			return false
		}
		sum := s.HitRate() + s.MissRate()
		return s.Requests == 0 || math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEq6Bounds checks that the estimated latency is always between
// the fastest and slowest service latencies.
func TestQuickEq6Bounds(t *testing.T) {
	f := func(l, r, m uint16) bool {
		var c Counters
		for i := 0; i < int(l%50); i++ {
			c.Record(LocalHit, 1)
		}
		for i := 0; i < int(r%50); i++ {
			c.Record(RemoteHit, 1)
		}
		for i := 0; i < int(m%50); i++ {
			c.Record(Miss, 1)
		}
		s := c.Snapshot()
		if s.Requests == 0 {
			return true
		}
		got := PaperLatencies.EstimatedAverageLatency(s)
		return got >= PaperLatencies.LocalHit-time.Millisecond &&
			got <= PaperLatencies.Miss+time.Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
