package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{LocalHit, "local-hit"},
		{RemoteHit, "remote-hit"},
		{Miss, "miss"},
		{Outcome(99), "outcome(99)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.o, got, tt.want)
		}
	}
}

func TestCountersRecord(t *testing.T) {
	var c Counters
	c.Record(LocalHit, 100)
	c.Record(RemoteHit, 200)
	c.Record(Miss, 700)
	c.Record(LocalHit, 100)

	if c.Requests != 4 {
		t.Fatalf("Requests = %d", c.Requests)
	}
	if c.LocalHits != 2 || c.RemoteHits != 1 || c.Misses != 1 {
		t.Fatalf("split = %d/%d/%d", c.LocalHits, c.RemoteHits, c.Misses)
	}
	if c.BytesRequested != 1100 || c.BytesLocal != 200 || c.BytesRemote != 200 || c.BytesMissed != 700 {
		t.Fatalf("bytes = %d/%d/%d/%d", c.BytesRequested, c.BytesLocal, c.BytesRemote, c.BytesMissed)
	}
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v", got)
	}
	if got := c.ByteHitRate(); math.Abs(got-400.0/1100) > 1e-12 {
		t.Fatalf("ByteHitRate = %v", got)
	}
	if got := c.LocalHitRate(); got != 0.5 {
		t.Fatalf("LocalHitRate = %v", got)
	}
	if got := c.RemoteHitRate(); got != 0.25 {
		t.Fatalf("RemoteHitRate = %v", got)
	}
	if got := c.MissRate(); got != 0.25 {
		t.Fatalf("MissRate = %v", got)
	}
}

func TestCountersZeroSafe(t *testing.T) {
	var c Counters
	if c.HitRate() != 0 || c.ByteHitRate() != 0 || c.MissRate() != 0 || c.MeanSimLatency() != 0 {
		t.Fatal("zero counters must not divide by zero")
	}
}

func TestCountersAdd(t *testing.T) {
	var a, b Counters
	a.Record(LocalHit, 10)
	a.SimLatency = time.Second
	b.Record(Miss, 20)
	b.SimLatency = 2 * time.Second
	a.Add(b)
	if a.Requests != 2 || a.BytesRequested != 30 || a.SimLatency != 3*time.Second {
		t.Fatalf("Add: %+v", a)
	}
}

func TestLatencyModelOf(t *testing.T) {
	m := PaperLatencies
	if m.Of(LocalHit) != 146*time.Millisecond ||
		m.Of(RemoteHit) != 342*time.Millisecond ||
		m.Of(Miss) != 2784*time.Millisecond {
		t.Fatalf("paper latencies wrong: %+v", m)
	}
}

func TestEstimatedAverageLatencyEq6(t *testing.T) {
	// Paper example shape: equal thirds of local/remote/miss gives the
	// plain average of the three latencies.
	var c Counters
	c.Record(LocalHit, 1)
	c.Record(RemoteHit, 1)
	c.Record(Miss, 1)
	want := (146 + 342 + 2784) / 3
	got := PaperLatencies.EstimatedAverageLatency(&c).Milliseconds()
	if got != int64(want) {
		t.Fatalf("eq6 = %dms, want %dms", got, want)
	}

	var empty Counters
	if PaperLatencies.EstimatedAverageLatency(&empty) != 0 {
		t.Fatal("empty counters should estimate 0")
	}
}

func TestEstimatedLatencyAllMisses(t *testing.T) {
	var c Counters
	for i := 0; i < 10; i++ {
		c.Record(Miss, 1)
	}
	if got := PaperLatencies.EstimatedAverageLatency(&c); got != 2784*time.Millisecond {
		t.Fatalf("all-miss latency = %v", got)
	}
}

// TestQuickConservation checks the accounting identity the simulator
// relies on: local + remote + miss = requests and the byte split sums to
// bytes requested, for arbitrary outcome sequences.
func TestQuickConservation(t *testing.T) {
	f := func(kinds []uint8) bool {
		var c Counters
		for _, k := range kinds {
			size := int64(k)%512 + 1
			switch k % 3 {
			case 0:
				c.Record(LocalHit, size)
			case 1:
				c.Record(RemoteHit, size)
			default:
				c.Record(Miss, size)
			}
		}
		if c.LocalHits+c.RemoteHits+c.Misses != c.Requests {
			return false
		}
		if c.BytesLocal+c.BytesRemote+c.BytesMissed != c.BytesRequested {
			return false
		}
		sum := c.HitRate() + c.MissRate()
		return c.Requests == 0 || math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEq6Bounds checks that the estimated latency is always between
// the fastest and slowest service latencies.
func TestQuickEq6Bounds(t *testing.T) {
	f := func(l, r, m uint16) bool {
		var c Counters
		for i := 0; i < int(l%50); i++ {
			c.Record(LocalHit, 1)
		}
		for i := 0; i < int(r%50); i++ {
			c.Record(RemoteHit, 1)
		}
		for i := 0; i < int(m%50); i++ {
			c.Record(Miss, 1)
		}
		if c.Requests == 0 {
			return true
		}
		got := PaperLatencies.EstimatedAverageLatency(&c)
		return got >= PaperLatencies.LocalHit-time.Millisecond &&
			got <= PaperLatencies.Miss+time.Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
