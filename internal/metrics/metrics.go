// Package metrics collects the performance measures the paper evaluates:
// cumulative document hit rate, cumulative byte hit rate, local/remote hit
// split, average cache expiration age, and the estimated average document
// latency of equation 6.
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Outcome classifies how one client request was served.
type Outcome int

// Outcome values.
const (
	// LocalHit: the document was in the cache the client asked.
	LocalHit Outcome = iota + 1
	// RemoteHit: the document came from another cache in the group.
	RemoteHit
	// Miss: the document had to be fetched from the origin server.
	Miss
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case LocalHit:
		return "local-hit"
	case RemoteHit:
		return "remote-hit"
	case Miss:
		return "miss"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Counters accumulates request outcomes. The zero value is ready to use.
// All methods are safe for concurrent use: the fields are atomics, so a
// scrape (Snapshot) can run concurrently with Record on the request path —
// like Robustness, and unlike the pre-telemetry version whose plain int64
// fields raced. Read values through Snapshot or the rate helpers.
type Counters struct {
	requests   atomic.Int64
	localHits  atomic.Int64
	remoteHits atomic.Int64
	misses     atomic.Int64

	bytesRequested atomic.Int64
	bytesLocal     atomic.Int64
	bytesRemote    atomic.Int64
	bytesMissed    atomic.Int64

	// simLatency sums per-request simulated latencies in nanoseconds, if
	// the caller applies a latency model per request.
	simLatency atomic.Int64
}

// Record adds one request with the given outcome and size.
func (c *Counters) Record(o Outcome, size int64) {
	c.requests.Add(1)
	c.bytesRequested.Add(size)
	switch o {
	case LocalHit:
		c.localHits.Add(1)
		c.bytesLocal.Add(size)
	case RemoteHit:
		c.remoteHits.Add(1)
		c.bytesRemote.Add(size)
	default:
		c.misses.Add(1)
		c.bytesMissed.Add(size)
	}
}

// AddSimLatency folds one request's modelled latency into the sum.
func (c *Counters) AddSimLatency(d time.Duration) {
	c.simLatency.Add(int64(d))
}

// Add merges a snapshot into c.
func (c *Counters) Add(s CountersSnapshot) {
	c.requests.Add(s.Requests)
	c.localHits.Add(s.LocalHits)
	c.remoteHits.Add(s.RemoteHits)
	c.misses.Add(s.Misses)
	c.bytesRequested.Add(s.BytesRequested)
	c.bytesLocal.Add(s.BytesLocal)
	c.bytesRemote.Add(s.BytesRemote)
	c.bytesMissed.Add(s.BytesMissed)
	c.simLatency.Add(int64(s.SimLatency))
}

// Snapshot returns a plain-value copy of the counters. Each field is read
// atomically; a snapshot taken mid-Record may be off by the in-flight
// request, which is the usual (and harmless) scrape semantics. The split
// counters are loaded before the totals: Record increments the total
// first, so a concurrent snapshot can observe a request not yet
// attributed to an outcome but never an outcome split exceeding the
// total — scrapers may rely on LocalHits+RemoteHits+Misses <= Requests.
func (c *Counters) Snapshot() CountersSnapshot {
	s := CountersSnapshot{
		LocalHits:   c.localHits.Load(),
		RemoteHits:  c.remoteHits.Load(),
		Misses:      c.misses.Load(),
		BytesLocal:  c.bytesLocal.Load(),
		BytesRemote: c.bytesRemote.Load(),
		BytesMissed: c.bytesMissed.Load(),
		SimLatency:  time.Duration(c.simLatency.Load()),
	}
	s.Requests = c.requests.Load()
	s.BytesRequested = c.bytesRequested.Load()
	return s
}

// Rate helpers delegating to a point-in-time snapshot, so existing callers
// keep reading rates straight off the accumulator.

// Hits returns local + remote hits.
func (c *Counters) Hits() int64 { return c.Snapshot().Hits() }

// HitRate returns the cumulative document hit rate.
func (c *Counters) HitRate() float64 { return c.Snapshot().HitRate() }

// ByteHitRate returns the cumulative byte hit rate.
func (c *Counters) ByteHitRate() float64 { return c.Snapshot().ByteHitRate() }

// LocalHitRate returns local hits over requests.
func (c *Counters) LocalHitRate() float64 { return c.Snapshot().LocalHitRate() }

// RemoteHitRate returns remote hits over requests.
func (c *Counters) RemoteHitRate() float64 { return c.Snapshot().RemoteHitRate() }

// MissRate returns misses over requests.
func (c *Counters) MissRate() float64 { return c.Snapshot().MissRate() }

// MeanSimLatency returns the mean simulated per-request latency.
func (c *Counters) MeanSimLatency() time.Duration { return c.Snapshot().MeanSimLatency() }

// CountersSnapshot is a plain-value copy of Counters — the type reports
// and tests consume, with the cumulative measures the paper evaluates.
type CountersSnapshot struct {
	Requests   int64
	LocalHits  int64
	RemoteHits int64
	Misses     int64

	BytesRequested int64
	BytesLocal     int64
	BytesRemote    int64
	BytesMissed    int64

	// SimLatency is the sum of per-request simulated latencies, if the
	// caller applied a latency model per request.
	SimLatency time.Duration
}

// Add merges other into s.
func (s *CountersSnapshot) Add(other CountersSnapshot) {
	s.Requests += other.Requests
	s.LocalHits += other.LocalHits
	s.RemoteHits += other.RemoteHits
	s.Misses += other.Misses
	s.BytesRequested += other.BytesRequested
	s.BytesLocal += other.BytesLocal
	s.BytesRemote += other.BytesRemote
	s.BytesMissed += other.BytesMissed
	s.SimLatency += other.SimLatency
}

// Hits returns local + remote hits.
func (s CountersSnapshot) Hits() int64 { return s.LocalHits + s.RemoteHits }

// HitRate returns the cumulative document hit rate: hits anywhere in the
// group over total requests.
func (s CountersSnapshot) HitRate() float64 { return ratio(s.Hits(), s.Requests) }

// ByteHitRate returns the cumulative byte hit rate: bytes served from the
// group over bytes requested.
func (s CountersSnapshot) ByteHitRate() float64 {
	return ratio(s.BytesLocal+s.BytesRemote, s.BytesRequested)
}

// LocalHitRate returns local hits over requests.
func (s CountersSnapshot) LocalHitRate() float64 { return ratio(s.LocalHits, s.Requests) }

// RemoteHitRate returns remote hits over requests.
func (s CountersSnapshot) RemoteHitRate() float64 { return ratio(s.RemoteHits, s.Requests) }

// MissRate returns misses over requests.
func (s CountersSnapshot) MissRate() float64 { return ratio(s.Misses, s.Requests) }

// MeanSimLatency returns the mean simulated per-request latency.
func (s CountersSnapshot) MeanSimLatency() time.Duration {
	if s.Requests == 0 {
		return 0
	}
	return s.SimLatency / time.Duration(s.Requests)
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// LatencyModel holds the three service latencies the paper measured on its
// testbed and uses in equation 6.
type LatencyModel struct {
	// LocalHit is LHL, the latency of serving a document from the cache
	// the client asked (paper: 146ms for a 4KB document).
	LocalHit time.Duration
	// RemoteHit is RHL, the latency of fetching from another cache in the
	// group (paper: 342ms).
	RemoteHit time.Duration
	// Miss is ML, the latency of fetching from the origin server
	// (paper: 2784ms, the mean over a set of web sites).
	Miss time.Duration
}

// PaperLatencies is the latency model measured in §4.2 of the paper.
var PaperLatencies = LatencyModel{
	LocalHit:  146 * time.Millisecond,
	RemoteHit: 342 * time.Millisecond,
	Miss:      2784 * time.Millisecond,
}

// Of returns the model latency for one outcome.
func (m LatencyModel) Of(o Outcome) time.Duration {
	switch o {
	case LocalHit:
		return m.LocalHit
	case RemoteHit:
		return m.RemoteHit
	default:
		return m.Miss
	}
}

// EstimatedAverageLatency evaluates the paper's equation 6:
//
//	(LHR*LHL + RHR*RHL + MR*ML) / (LHR + RHR + MR)
//
// over the recorded outcome mix.
func (m LatencyModel) EstimatedAverageLatency(s CountersSnapshot) time.Duration {
	if s.Requests == 0 {
		return 0
	}
	total := float64(s.LocalHits)*m.LocalHit.Seconds() +
		float64(s.RemoteHits)*m.RemoteHit.Seconds() +
		float64(s.Misses)*m.Miss.Seconds()
	return time.Duration(total / float64(s.Requests) * float64(time.Second))
}
