// Package metrics collects the performance measures the paper evaluates:
// cumulative document hit rate, cumulative byte hit rate, local/remote hit
// split, average cache expiration age, and the estimated average document
// latency of equation 6.
package metrics

import (
	"fmt"
	"time"
)

// Outcome classifies how one client request was served.
type Outcome int

// Outcome values.
const (
	// LocalHit: the document was in the cache the client asked.
	LocalHit Outcome = iota + 1
	// RemoteHit: the document came from another cache in the group.
	RemoteHit
	// Miss: the document had to be fetched from the origin server.
	Miss
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case LocalHit:
		return "local-hit"
	case RemoteHit:
		return "remote-hit"
	case Miss:
		return "miss"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Counters accumulates request outcomes. The zero value is ready to use.
type Counters struct {
	Requests   int64
	LocalHits  int64
	RemoteHits int64
	Misses     int64

	BytesRequested int64
	BytesLocal     int64
	BytesRemote    int64
	BytesMissed    int64

	// SimLatency is the sum of per-request simulated latencies, if the
	// caller applies a latency model per request.
	SimLatency time.Duration
}

// Record adds one request with the given outcome and size.
func (c *Counters) Record(o Outcome, size int64) {
	c.Requests++
	c.BytesRequested += size
	switch o {
	case LocalHit:
		c.LocalHits++
		c.BytesLocal += size
	case RemoteHit:
		c.RemoteHits++
		c.BytesRemote += size
	default:
		c.Misses++
		c.BytesMissed += size
	}
}

// Add merges other into c.
func (c *Counters) Add(other Counters) {
	c.Requests += other.Requests
	c.LocalHits += other.LocalHits
	c.RemoteHits += other.RemoteHits
	c.Misses += other.Misses
	c.BytesRequested += other.BytesRequested
	c.BytesLocal += other.BytesLocal
	c.BytesRemote += other.BytesRemote
	c.BytesMissed += other.BytesMissed
	c.SimLatency += other.SimLatency
}

// Hits returns local + remote hits.
func (c *Counters) Hits() int64 { return c.LocalHits + c.RemoteHits }

// HitRate returns the cumulative document hit rate: hits anywhere in the
// group over total requests.
func (c *Counters) HitRate() float64 { return ratio(c.Hits(), c.Requests) }

// ByteHitRate returns the cumulative byte hit rate: bytes served from the
// group over bytes requested.
func (c *Counters) ByteHitRate() float64 {
	return ratio(c.BytesLocal+c.BytesRemote, c.BytesRequested)
}

// LocalHitRate returns local hits over requests.
func (c *Counters) LocalHitRate() float64 { return ratio(c.LocalHits, c.Requests) }

// RemoteHitRate returns remote hits over requests.
func (c *Counters) RemoteHitRate() float64 { return ratio(c.RemoteHits, c.Requests) }

// MissRate returns misses over requests.
func (c *Counters) MissRate() float64 { return ratio(c.Misses, c.Requests) }

// MeanSimLatency returns the mean simulated per-request latency.
func (c *Counters) MeanSimLatency() time.Duration {
	if c.Requests == 0 {
		return 0
	}
	return c.SimLatency / time.Duration(c.Requests)
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// LatencyModel holds the three service latencies the paper measured on its
// testbed and uses in equation 6.
type LatencyModel struct {
	// LocalHit is LHL, the latency of serving a document from the cache
	// the client asked (paper: 146ms for a 4KB document).
	LocalHit time.Duration
	// RemoteHit is RHL, the latency of fetching from another cache in the
	// group (paper: 342ms).
	RemoteHit time.Duration
	// Miss is ML, the latency of fetching from the origin server
	// (paper: 2784ms, the mean over a set of web sites).
	Miss time.Duration
}

// PaperLatencies is the latency model measured in §4.2 of the paper.
var PaperLatencies = LatencyModel{
	LocalHit:  146 * time.Millisecond,
	RemoteHit: 342 * time.Millisecond,
	Miss:      2784 * time.Millisecond,
}

// Of returns the model latency for one outcome.
func (m LatencyModel) Of(o Outcome) time.Duration {
	switch o {
	case LocalHit:
		return m.LocalHit
	case RemoteHit:
		return m.RemoteHit
	default:
		return m.Miss
	}
}

// EstimatedAverageLatency evaluates the paper's equation 6:
//
//	(LHR*LHL + RHR*RHL + MR*ML) / (LHR + RHR + MR)
//
// over the recorded outcome mix.
func (m LatencyModel) EstimatedAverageLatency(c *Counters) time.Duration {
	if c.Requests == 0 {
		return 0
	}
	total := float64(c.LocalHits)*m.LocalHit.Seconds() +
		float64(c.RemoteHits)*m.RemoteHit.Seconds() +
		float64(c.Misses)*m.Miss.Seconds()
	return time.Duration(total / float64(c.Requests) * float64(time.Second))
}
