package metrics

import (
	"sync"
	"testing"
)

func TestRobustnessCounters(t *testing.T) {
	var r Robustness
	r.PeerFailure()
	r.PeerFailure()
	r.Retry()
	r.Fallback()
	r.BreakerOpen()
	r.BreakerClose()
	r.Coalesced()
	r.Coalesced()
	r.Coalesced()
	r.LeaderElection()
	r.LeaderElection()
	r.LeaderRetry()
	r.Shed()
	r.OriginWait()
	got := r.Snapshot()
	want := RobustnessSnapshot{
		PeerFailures: 2, Retries: 1, Fallbacks: 1, BreakerOpens: 1, BreakerCloses: 1,
		CoalescedFollowers: 3, LeaderElections: 2, LeaderRetries: 1, Sheds: 1, OriginWaits: 1,
	}
	if got != want {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
}

func TestRobustnessConcurrent(t *testing.T) {
	var r Robustness
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.PeerFailure()
				r.Retry()
			}
		}()
	}
	wg.Wait()
	got := r.Snapshot()
	if got.PeerFailures != 8000 || got.Retries != 8000 {
		t.Fatalf("snapshot = %+v", got)
	}
}
