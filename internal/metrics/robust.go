package metrics

import "sync/atomic"

// Robustness counts the degradations the fault-tolerant fetch path takes,
// so that surviving a failure is observable rather than silent. The zero
// value is ready to use; all methods are safe for concurrent use (the
// request path increments these while holding no locks).
type Robustness struct {
	peerFailures  atomic.Int64
	retries       atomic.Int64
	fallbacks     atomic.Int64
	breakerOpens  atomic.Int64
	breakerCloses atomic.Int64
	wireClamps    atomic.Int64
	traceClamps   atomic.Int64

	coalescedFollowers atomic.Int64
	leaderElections    atomic.Int64
	leaderRetries      atomic.Int64
	sheds              atomic.Int64
	originWaits        atomic.Int64

	ejections      atomic.Int64
	readmissions   atomic.Int64
	migratedDocs   atomic.Int64
	migratedBytes  atomic.Int64
	migrationFails atomic.Int64
}

// PeerFailure records one failed exchange with a peer: an ICP silence on a
// timed-out fan-out, a failed dial, or a fetch that broke mid-body.
func (r *Robustness) PeerFailure() { r.peerFailures.Add(1) }

// Retry records one extra attempt after a failure: the next ICP hit
// responder, or a repeated parent/origin fetch.
func (r *Robustness) Retry() { r.retries.Add(1) }

// Fallback records a request that abandoned the cooperative path (every
// hit responder failed) and degraded to the parent/origin instead.
func (r *Robustness) Fallback() { r.fallbacks.Add(1) }

// BreakerOpen records a peer breaker opening (peer marked dead).
func (r *Robustness) BreakerOpen() { r.breakerOpens.Add(1) }

// BreakerClose records a dead peer resurrecting after a successful probe.
func (r *Robustness) BreakerClose() { r.breakerCloses.Add(1) }

// WireClamp records a piggybacked expiration age that arrived negative or
// overflowing and was clamped instead of trusted (hproto.ParseAgeClamped)
// — a peer whose wire output cannot be taken at face value.
func (r *Robustness) WireClamp() { r.wireClamps.Add(1) }

// TraceClamp records a malformed X-Trace-Context header that was dropped
// instead of propagated: the request proceeds untraced rather than failing
// over observability metadata.
func (r *Robustness) TraceClamp() { r.traceClamps.Add(1) }

// Coalesced records a request served as a single-flight follower: a
// concurrent miss for the same URL led the fetch and this request shared
// its result instead of going upstream itself.
func (r *Robustness) Coalesced() { r.coalescedFollowers.Add(1) }

// LeaderElection records a request elected to lead a single-flight
// epoch — the one resolution sent upstream however many requesters are
// coalesced behind it.
func (r *Robustness) LeaderElection() { r.leaderElections.Add(1) }

// LeaderRetry records a leader election that replaced a failed leader: a
// follower's one bounded retry after the epoch it waited on errored.
func (r *Robustness) LeaderRetry() { r.leaderRetries.Add(1) }

// Shed records a request refused at the front door because the node was
// over its in-flight bound and the queue-wait budget elapsed.
func (r *Robustness) Shed() { r.sheds.Add(1) }

// OriginWait records an upstream fetch that found the origin/parent
// concurrency semaphore full and had to queue for a slot.
func (r *Robustness) OriginWait() { r.originWaits.Add(1) }

// Ejection records a peer removed from the locator set because its
// breaker stayed dead past the membership grace window.
func (r *Robustness) Ejection() { r.ejections.Add(1) }

// Readmission records an ejected peer restored to the locator set after
// an out-of-band probe succeeded.
func (r *Robustness) Readmission() { r.readmissions.Add(1) }

// Migrated records one document handed off to its new owner during a
// membership rebalance or drain.
func (r *Robustness) Migrated(bytes int64) {
	r.migratedDocs.Add(1)
	r.migratedBytes.Add(bytes)
}

// MigrationFailure records a handoff that failed in transit (the document
// stays recoverable from the origin, but the transfer bytes were wasted).
func (r *Robustness) MigrationFailure() { r.migrationFails.Add(1) }

// RobustnessSnapshot is a consistent-enough copy of the counters for
// reporting and tests.
type RobustnessSnapshot struct {
	PeerFailures  int64
	Retries       int64
	Fallbacks     int64
	BreakerOpens  int64
	BreakerCloses int64
	WireClamps    int64
	TraceClamps   int64

	CoalescedFollowers int64
	LeaderElections    int64
	LeaderRetries      int64
	Sheds              int64
	OriginWaits        int64

	Ejections         int64
	Readmissions      int64
	MigratedDocs      int64
	MigratedBytes     int64
	MigrationFailures int64
}

// Snapshot returns the current counter values.
func (r *Robustness) Snapshot() RobustnessSnapshot {
	return RobustnessSnapshot{
		PeerFailures:  r.peerFailures.Load(),
		Retries:       r.retries.Load(),
		Fallbacks:     r.fallbacks.Load(),
		BreakerOpens:  r.breakerOpens.Load(),
		BreakerCloses: r.breakerCloses.Load(),
		WireClamps:    r.wireClamps.Load(),
		TraceClamps:   r.traceClamps.Load(),

		CoalescedFollowers: r.coalescedFollowers.Load(),
		LeaderElections:    r.leaderElections.Load(),
		LeaderRetries:      r.leaderRetries.Load(),
		Sheds:              r.sheds.Load(),
		OriginWaits:        r.originWaits.Load(),

		Ejections:         r.ejections.Load(),
		Readmissions:      r.readmissions.Load(),
		MigratedDocs:      r.migratedDocs.Load(),
		MigratedBytes:     r.migratedBytes.Load(),
		MigrationFailures: r.migrationFails.Load(),
	}
}
