package metrics

import "sync/atomic"

// Digest counts the digest-maintenance work a node performs — the
// traffic the incremental counting-filter + delta-sync path is supposed
// to shrink, kept as exact counters so tests and the eacctl report can
// assert on it without the telemetry registry. The zero value is ready;
// all methods are safe for concurrent use.
type Digest struct {
	deltasServed  atomic.Int64
	fullsServed   atomic.Int64
	deltasApplied atomic.Int64
	fullsApplied  atomic.Int64

	deltaBytesServed atomic.Int64
	fullBytesServed  atomic.Int64

	rebuildEscapes atomic.Int64
	staleServed    atomic.Int64
	fetches        atomic.Int64
	fetchFailures  atomic.Int64
}

// DeltaServed records answering a peer's ?since= refresh with a compact
// delta of the given wire size.
func (d *Digest) DeltaServed(bytes int) {
	d.deltasServed.Add(1)
	d.deltaBytesServed.Add(int64(bytes))
}

// FullServed records answering a digest fetch with a full filter
// transfer of the given wire size.
func (d *Digest) FullServed(bytes int) {
	d.fullsServed.Add(1)
	d.fullBytesServed.Add(int64(bytes))
}

// DeltaApplied records advancing a peer-digest replica with a delta.
func (d *Digest) DeltaApplied() { d.deltasApplied.Add(1) }

// FullApplied records replacing a peer-digest replica with a full
// transfer.
func (d *Digest) FullApplied() { d.fullsApplied.Add(1) }

// RebuildEscape records taking the counter-saturation escape hatch: a
// full-URL-scan rebuild of the own digest. Steady state must never
// increment this.
func (d *Digest) RebuildEscape() { d.rebuildEscapes.Add(1) }

// StaleServed records a lookup answered from a stale peer digest while a
// background refresh was (already) in flight — the serve-stale path that
// keeps digest fetches off the miss path.
func (d *Digest) StaleServed() { d.staleServed.Add(1) }

// Fetch records one digest fetch dialled to a peer (single-flight: a
// 32-way miss herd on a cold peer digest still counts 1).
func (d *Digest) Fetch() { d.fetches.Add(1) }

// FetchFailure records a digest fetch that dialled but failed.
func (d *Digest) FetchFailure() { d.fetchFailures.Add(1) }

// DigestSnapshot is a point-in-time copy of the counters.
type DigestSnapshot struct {
	DeltasServed     int64 `json:"deltas_served"`
	FullsServed      int64 `json:"fulls_served"`
	DeltasApplied    int64 `json:"deltas_applied"`
	FullsApplied     int64 `json:"fulls_applied"`
	DeltaBytesServed int64 `json:"delta_bytes_served"`
	FullBytesServed  int64 `json:"full_bytes_served"`
	RebuildEscapes   int64 `json:"rebuild_escapes"`
	StaleServed      int64 `json:"stale_served"`
	Fetches          int64 `json:"fetches"`
	FetchFailures    int64 `json:"fetch_failures"`
}

// Snapshot returns a consistent-enough copy for reporting (each counter
// is read atomically; the set is not a transaction).
func (d *Digest) Snapshot() DigestSnapshot {
	return DigestSnapshot{
		DeltasServed:     d.deltasServed.Load(),
		FullsServed:      d.fullsServed.Load(),
		DeltasApplied:    d.deltasApplied.Load(),
		FullsApplied:     d.fullsApplied.Load(),
		DeltaBytesServed: d.deltaBytesServed.Load(),
		FullBytesServed:  d.fullBytesServed.Load(),
		RebuildEscapes:   d.rebuildEscapes.Load(),
		StaleServed:      d.staleServed.Load(),
		Fetches:          d.fetches.Load(),
		FetchFailures:    d.fetchFailures.Load(),
	}
}
